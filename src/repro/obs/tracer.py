"""Span-based tracing of real kernel executions (S17, S23).

A :class:`Tracer` records one :class:`Span` per retired task of the
threaded (or sequential) executor: which kernel ran on which tile
coordinates, on which worker thread, and the three wall-clock
timestamps of its life cycle — *submit* (handed to the pool), *start*
(kernel entry), *finish* (kernel return).  All timestamps come from
:func:`time.perf_counter` and are stored relative to the tracer's
epoch, so a capture starts near ``t = 0``.

The recorder is a single lock-protected append; the executor's hot
path pays nothing when tracing is off because it is handed
:data:`NULL_TRACER` (or ``None``) and skips the calls entirely —
``NullTracer.enabled`` is ``False`` and every method is a no-op.

The distributed extension (S23) crosses the process boundary of the
shared-memory pool: a :class:`DistributedTracer` merges the parent
scheduler's dispatch/retire stamps with worker-side child spans
(*deserialize* / *kernel* / *publish*) shipped back over the pool's
:class:`~repro.obs.stream.BusRelay`, aligned onto the parent's
``perf_counter`` timeline by an NTP-style clock handshake
(:func:`estimate_clock_sync`, one :class:`ClockSync` per worker).
Every retired task becomes one :class:`TaskPhases` record — six
telescoping phases whose sum equals the task's wall-clock latency *by
construction* — plus a regular :class:`Span`, so everything that
consumes a plain tracer (``analyze_tracer``, Chrome export, overlay
diffs) keeps working unchanged.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dag.tasks import Task

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TaskPhases",
    "PHASES",
    "ClockSync",
    "estimate_clock_sync",
    "DistributedTracer",
]


@dataclass(slots=True)
class Span:
    """One executed task: identity, placement, and wall-clock times.

    Attributes
    ----------
    tid : int
        Task id (index into the graph's task list).
    name : str
        Human label, e.g. ``"TSMQR(3,1,1,2)"``.
    kernel : str
        Kernel class name (``GEQRT`` ... ``TTMQR``).
    row, piv, col, j : int or None
        Tile coordinates of the task (``piv``/``j`` are ``None`` for
        kernels that do not use them).
    worker : int
        Dense worker index (0-based; the order threads first touched
        the tracer).  0 for sequential runs.
    submit, start, finish : float
        Seconds since the tracer's epoch.
    count : int
        Tasks the span covers (1 except for batched (level, kernel)
        group spans, where it is the batch size — per-task means
        normalize by it).
    aborted : bool
        The task was in flight when its run aborted (worker death or a
        propagated error); ``finish`` is the abort time, not a kernel
        return.
    """

    tid: int
    name: str
    kernel: str
    row: int
    piv: Optional[int]
    col: int
    j: Optional[int]
    worker: int
    submit: float
    start: float
    finish: float
    count: int = 1
    aborted: bool = False

    @property
    def duration(self) -> float:
        """Kernel wall time in seconds (``finish - start``)."""
        return self.finish - self.start

    @property
    def queue_delay(self) -> float:
        """Seconds spent between submission and kernel entry."""
        return self.start - self.submit


@dataclass
class Tracer:
    """Thread-safe recorder of per-task :class:`Span` objects.

    Workers call :meth:`now` (lock-free) for timestamps and
    :meth:`record` (one short lock) once per retired task.  The span
    buffer is append-only; read it via :attr:`spans` after the run.
    """

    enabled: bool = True
    epoch: float = field(default_factory=time.perf_counter)
    spans: list[Span] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _threads: dict[int, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic, lock-free)."""
        return time.perf_counter() - self.epoch

    def worker_index(self) -> int:
        """Dense 0-based index of the calling thread (first-touch order)."""
        ident = threading.get_ident()
        with self._lock:
            idx = self._threads.get(ident)
            if idx is None:
                idx = len(self._threads)
                self._threads[ident] = idx
            return idx

    def record(self, task: "Task", submit: float, start: float,
               finish: float, worker: int | None = None,
               count: int = 1, aborted: bool = False) -> Span:
        """Append the span of one retired ``task``; returns it.

        ``count`` marks group spans covering several tasks (batched
        backend); ``aborted`` closes a span whose task never finished.
        """
        w = self.worker_index() if worker is None else worker
        span = Span(tid=task.tid, name=str(task), kernel=task.kernel.value,
                    row=task.row, piv=task.piv, col=task.col, j=task.j,
                    worker=w, submit=submit, start=start, finish=finish,
                    count=count, aborted=aborted)
        with self._lock:
            self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    @property
    def worker_count(self) -> int:
        """Number of distinct threads that recorded spans."""
        with self._lock:
            n = len(self._threads)
        return max(n, max((s.worker for s in self.spans), default=-1) + 1)

    def makespan(self) -> float:
        """``max(finish) - min(submit)`` over the capture (0 if empty)."""
        if not self.spans:
            return 0.0
        return (max(s.finish for s in self.spans)
                - min(s.submit for s in self.spans))

    def busy_fraction(self) -> float:
        """Fraction of worker-time inside kernels (1.0 = no idling)."""
        span = self.makespan()
        nw = self.worker_count
        if span <= 0 or nw == 0:
            return 1.0
        return sum(s.duration for s in self.spans) / (nw * span)


class NullTracer(Tracer):
    """Tracing disabled: every call is a no-op and records nothing.

    The executor checks :attr:`enabled` once up front and skips all
    per-task tracing work, so the hot path carries no extra locking or
    allocation; these methods exist only so a ``NullTracer`` is also
    safe to call directly.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False, epoch=0.0)

    def now(self) -> float:  # pragma: no cover - trivial
        return 0.0

    def worker_index(self) -> int:  # pragma: no cover - trivial
        return 0

    def record(self, task, submit, start, finish, worker=None,
               count=1, aborted=False):
        return None


#: shared do-nothing tracer; pass this (or ``None``) to disable tracing
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# distributed tracing: lifecycle phases, clock alignment (S23)
# ----------------------------------------------------------------------

#: the task lifecycle phases, in timeline order.  Each is the interval
#: between two adjacent boundaries of a :class:`TaskPhases` record, so
#: their sum telescopes to the task's wall-clock latency exactly.
PHASES = ("queued", "dispatched", "deserialized", "computing",
          "published", "retired")


@dataclass(slots=True)
class TaskPhases:
    """Lifecycle boundaries of one task, on the parent's timeline.

    Seven monotone timestamps (seconds since the tracer epoch) split a
    task's life into the six :data:`PHASES`:

    ======================  ==========================================
    ``queued``              ``ready → dispatch`` — sat in the parent's
                            priority heap / prefetch budget
    ``dispatched``          ``dispatch → recv`` — descriptor pickling +
                            queue transfer + worker wake-up
    ``deserialized``        ``recv → start`` — worker-side unpack and
                            pre-kernel bookkeeping
    ``computing``           ``start → finish`` — the kernel itself
    ``published``           ``finish → publish`` — completion message +
                            telemetry enqueue on the worker
    ``retired``             ``publish → retire`` — done-queue transit
                            back + parent bookkeeping
    ======================  ==========================================

    Worker-side boundaries (``recv``/``start``/``finish``/``publish``)
    are clock-aligned via the worker's :class:`ClockSync` and clamped
    monotone, so any alignment residual is absorbed into the adjacent
    phase rather than producing negative durations — the telescoping
    identity ``sum(phases) == latency`` holds exactly.

    For executors without a process boundary (sequential, threaded,
    batched) the degenerate mapping is ``ready = dispatch = submit``,
    ``recv = start``, ``publish = finish = retire``: everything lands
    in ``queued`` and ``computing``, which keeps reports comparable
    across all three modes.

    Tasks dispatched as part of a micro-batch (``--batch``, S24) share
    one descriptor: transit, deserialize, publish and retirement were
    each paid once for the whole group, so every member is charged a
    ``1/K`` slice of those windows while its ``computing`` phase is an
    even split of the group's kernel window.  The wait for *earlier
    members of the same group* is attributed to ``queued`` —
    scheduling delay, not IPC — so the four IPC phases report the
    amortized per-task cost honestly and per-phase sums over a group
    equal the group's true one-time costs.

    Two overlap rules keep the IPC phases honest on a saturated box:
    descriptor transit counts only from the later of the dispatch
    stamp and the worker's idle stamp (a descriptor prefetched while
    the worker was still computing waited deliberately), and the
    publish-to-retire gap excludes time the worker spent computing
    subsequent descriptors (the parent's completion processing was
    displaced by useful work, and that wait already shows up as the
    successors' ``queued`` delay).  Both overlaps are scheduling, not
    IPC; ``retired`` reports only transit + wake-up + bookkeeping.
    """

    tid: int
    name: str
    kernel: str
    worker: int
    ready: float
    dispatch: float
    recv: float
    start: float
    finish: float
    publish: float
    retire: float
    count: int = 1
    aborted: bool = False
    #: worker-side boundaries actually measured (False = parent-only
    #: fallback: the span record was dropped or the worker died)
    measured: bool = True

    # ------------------------------------------------------------------
    @property
    def queued(self) -> float:
        return self.dispatch - self.ready

    @property
    def dispatched(self) -> float:
        return self.recv - self.dispatch

    @property
    def deserialized(self) -> float:
        return self.start - self.recv

    @property
    def computing(self) -> float:
        return self.finish - self.start

    @property
    def published(self) -> float:
        return self.publish - self.finish

    @property
    def retired(self) -> float:
        return self.retire - self.publish

    @property
    def latency(self) -> float:
        """Wall-clock life of the task: ``retire - ready``."""
        return self.retire - self.ready

    @property
    def overhead(self) -> float:
        """Everything but the kernel: ``latency - computing``."""
        return self.latency - self.computing

    def phase(self, name: str) -> float:
        if name not in PHASES:
            raise KeyError(f"unknown phase {name!r} (choose from {PHASES})")
        return getattr(self, name)

    def to_dict(self) -> dict:
        d = {"tid": self.tid, "name": self.name, "kernel": self.kernel,
             "worker": self.worker, "count": self.count,
             "aborted": self.aborted, "measured": self.measured,
             "latency": self.latency}
        d.update({p: self.phase(p) for p in PHASES})
        return d


@dataclass(frozen=True)
class ClockSync:
    """One worker's ``perf_counter`` offset against the parent clock.

    ``offset`` is ``worker_clock - parent_clock`` at the estimate's
    midpoint; a worker stamp ``t_w`` maps onto the parent timeline as
    ``t_w - offset``.  ``residual`` is the uncertainty bound of that
    mapping (half the best round-trip — the classical NTP argument:
    the true offset lies within ±``rtt/2`` of the midpoint estimate).
    ``drift`` is the offset's rate of change per second against the
    previous estimate of the same worker (0 on the first sync).
    ``at`` is the parent ``perf_counter`` of the estimate.
    """

    worker: int
    offset: float
    residual: float
    rtt: float
    samples: int
    at: float
    drift: float = 0.0

    def aligned(self, t_worker: float) -> float:
        """Map a worker ``perf_counter`` stamp onto the parent clock."""
        return t_worker - self.offset

    def to_dict(self) -> dict:
        return {"worker": self.worker, "offset_s": self.offset,
                "residual_s": self.residual, "rtt_s": self.rtt,
                "samples": self.samples, "drift": self.drift}


def estimate_clock_sync(worker: int,
                        samples: list[tuple[float, float, float]],
                        prev: ClockSync | None = None) -> ClockSync:
    """NTP-style offset estimate from ping round-trips.

    Each sample is ``(t_send, t_worker, t_recv)``: parent
    ``perf_counter`` at ping send and reply receipt bracketing the
    worker's own stamp.  The minimum-RTT sample is the least
    contaminated by queue latency, so it alone provides the estimate:
    ``offset = t_worker - (t_send + t_recv) / 2`` with residual
    ``rtt / 2``.  ``prev`` (the same worker's previous estimate)
    yields the drift rate.
    """
    if not samples:
        raise ValueError("need at least one ping sample")
    t_send, t_worker, t_recv = min(samples, key=lambda s: s[2] - s[0])
    rtt = max(0.0, t_recv - t_send)
    mid = (t_send + t_recv) / 2.0
    offset = t_worker - mid
    drift = 0.0
    if prev is not None and mid > prev.at:
        drift = (offset - prev.offset) / (mid - prev.at)
    return ClockSync(worker=worker, offset=offset, residual=rtt / 2.0,
                     rtt=rtt, samples=len(samples), at=mid, drift=drift)


@dataclass
class DistributedTracer(Tracer):
    """Tracer that merges parent and worker spans on one timeline.

    The process pool drives it in three stages:

    1. :meth:`set_clock` after each run's sync handshake (one
       :class:`ClockSync` per worker, re-estimated every run so drift
       on a persistent pool stays bounded);
    2. during the run, :meth:`record_parent` per retirement (parent
       stamps) while the relay's span sink feeds
       :meth:`add_worker_span` (worker stamps, worker clock);
    3. :meth:`finalize` after the relay drained — the run's parent and
       worker halves are snapshotted onto a backlog and the pending
       maps cleared (nothing accumulates across runs on a persistent
       pool).  The actual merge into :class:`TaskPhases` +
       :class:`Span` records is *lazy*: it runs on the first read of
       :attr:`phases` / :attr:`spans`, keeping the per-run tracing
       cost inside ``factor()`` to stamp capture alone.

    It is also a perfectly valid plain :class:`Tracer`: handed to the
    threaded or batched executor it records ordinary spans and
    :attr:`phases` stays empty (reports fall back to the degenerate
    two-phase view).
    """

    clocks: dict[int, ClockSync] = field(default_factory=dict)
    _parent: dict[int, tuple] = field(default_factory=dict, repr=False)
    _wspans: dict[int, tuple] = field(default_factory=dict, repr=False)
    #: finalized-but-unmerged runs: (parent, wspans, offsets) snapshots
    _backlog: list[tuple] = field(default_factory=list, repr=False)
    _phases: list[TaskPhases] = field(default_factory=list, repr=False)
    _merge_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False)

    @property
    def phases(self) -> list[TaskPhases]:
        """Merged lifecycle records (drains any finalized backlog)."""
        if self._backlog:
            self._drain_backlog()
        return self._phases

    @property
    def spans(self) -> list[Span]:
        if self._backlog:
            self._drain_backlog()
        return self._spans_store

    @spans.setter
    def spans(self, value: list[Span]) -> None:
        # the dataclass __init__ assigns the field through this setter
        self._spans_store = value

    # ------------------------------------------------------------------
    def set_clock(self, sync: ClockSync) -> None:
        with self._lock:
            self.clocks[sync.worker] = sync

    @property
    def max_residual(self) -> float:
        """Worst clock-alignment uncertainty across workers (seconds)."""
        with self._lock:
            return max((c.residual for c in self.clocks.values()),
                       default=0.0)

    def aligned(self, worker: int, t_worker: float) -> float:
        """A worker ``perf_counter`` stamp as seconds since the epoch."""
        sync = self.clocks.get(worker)
        off = sync.offset if sync is not None else 0.0
        return t_worker - off - self.epoch

    # ------------------------------------------------------------------
    def add_worker_span(self, fields: dict) -> None:
        """Relay span sink: worker-side stamps (worker clock).

        Accepts one task (scalar fields) or a worker's batched record
        (list-valued ``tid``/``recv``/``start``/``finish``/``publish``
        of equal length).  Micro-batched records additionally carry
        ``grecv``/``gpub``/``gsize`` — the group's shared receive and
        publish stamps plus its size — which the merge uses to
        amortize the once-per-group parent-side costs; when absent the
        task is treated as its own group of one.  Called from the
        relay pump thread; malformed records are dropped rather than
        killing the pump.
        """
        try:
            w = int(fields["worker"])
            tids = fields["tid"]
            if isinstance(tids, (list, tuple)):
                n = len(tids)
                grecv = fields.get("grecv", fields["recv"])
                gpub = fields.get("gpub", fields["publish"])
                gsize = fields.get("gsize", [1] * n)
                gfree = fields.get("gfree", [0.0] * n)
                recs = list(zip(tids, fields["recv"], fields["start"],
                                fields["finish"], fields["publish"],
                                grecv, gpub, gsize, gfree))
            else:
                recs = [(tids, fields["recv"], fields["start"],
                         fields["finish"], fields["publish"],
                         fields.get("grecv", fields["recv"]),
                         fields.get("gpub", fields["publish"]),
                         fields.get("gsize", 1),
                         fields.get("gfree", 0.0))]
        except (KeyError, TypeError):
            return
        with self._lock:
            for (tid, recv, start, finish, publish,
                 grecv, gpub, gs, gfree) in recs:
                try:
                    self._wspans[int(tid)] = (
                        w, float(recv), float(start), float(finish),
                        float(publish), float(grecv), float(gpub),
                        int(gs), float(gfree))
                except (TypeError, ValueError):
                    continue

    def record_parent(self, task: "Task", ready: float, dispatch: float,
                      retire: float, worker: int, dt: float = 0.0,
                      aborted: bool = False) -> None:
        """Parent-side half of one task: scheduler stamps (epoch-relative).

        ``dt`` is the worker-reported kernel seconds, used only as the
        fallback when the worker span record never arrives.

        Lock-free: only the scheduler thread writes parent halves (one
        dict store, atomic under the GIL), and :meth:`finalize` swaps
        the map out under the lock before reading it.
        """
        self._parent[task.tid] = (task, ready, dispatch, retire,
                                  worker, dt, aborted)

    # ------------------------------------------------------------------
    def finalize(self) -> int:
        """Close out one run; returns the number of tasks captured.

        Snapshots the run's parent/worker halves (plus the clock
        offsets in force) onto a merge backlog and clears the pending
        maps — a persistent pool calls this once per run, so per-run
        bookkeeping never outlives the run.  The O(tasks) merge is
        deferred to the first read of :attr:`phases` / :attr:`spans`,
        keeping ``finalize`` O(1) inside the timed run window.
        """
        with self._lock:
            parent, self._parent = self._parent, {}
            wspans, self._wspans = self._wspans, {}
            offsets = {w: c.offset + self.epoch
                       for w, c in self.clocks.items()}
        if parent:
            self._backlog.append((parent, wspans, offsets))
        return len(parent)

    def _drain_backlog(self) -> None:
        """Merge every finalized-but-unmerged run into phases/spans.

        Worker stamps are clamped monotone against the parent
        boundaries: the telescoping phase identity holds exactly and
        any clock-alignment residual is absorbed by adjacent phases.
        Guarded by its own lock (never ``_lock``) so property reads
        from inside locked :class:`Tracer` methods cannot deadlock.
        """
        with self._merge_lock:
            while self._backlog:
                parent, wspans, offsets = self._backlog.pop(0)
                self._merge_run(parent, wspans, offsets)

    def _merge_run(self, parent: dict, wspans: dict,
                   offsets: dict) -> int:
        new_phases: list[TaskPhases] = []
        new_spans: list[Span] = []
        # per-worker busy windows (one per descriptor, parent clock,
        # sorted): the deserialize->publish span of every group the
        # worker executed.  Execution is sequential per worker, so the
        # windows never overlap.  Used below to keep completion-notice
        # latency honest on a saturated box.
        busy: dict[int, list[tuple[float, float]]] = {}
        _seen: set = set()
        for ws in wspans.values():
            if len(ws) < 9:
                continue
            key = (ws[0], ws[5], ws[6])
            if key in _seen:
                continue
            _seen.add(key)
            off = offsets.get(ws[0], self.epoch)
            busy.setdefault(ws[0], []).append((ws[5] - off, ws[6] - off))
        busy_starts: dict[int, list[float]] = {}
        for w, win in busy.items():
            win.sort()
            busy_starts[w] = [lo for lo, _ in win]
        for tid in sorted(parent):
            task, ready, dispatch, retire, worker, dt, aborted = parent[tid]
            ws = wspans.get(tid)
            if ws is not None and not aborted:
                widx, recv, start, finish, publish = ws[:5]
                if len(ws) >= 9:
                    grecv, gpub, gsize, gfree = ws[5:9]
                else:
                    grecv, gpub, gsize, gfree = recv, publish, 1, 0.0
                off = offsets.get(widx, self.epoch)
                recv -= off
                start -= off
                finish -= off
                publish -= off
                if len(ws) >= 9:
                    # group-aware attribution: the descriptor transit
                    # (dispatch -> group recv) and the retirement
                    # (group publish -> retire) were each paid once
                    # per descriptor, so charge this member a 1/K
                    # slice of each.  Transit counts only from the
                    # later of the dispatch stamp and the worker's
                    # idle stamp: a descriptor prefetched while the
                    # worker was still computing waited deliberately,
                    # and that overlap — like the wait for earlier
                    # members of the same group — is scheduling delay
                    # (``queued``), not IPC work.
                    grecv -= off
                    gpub -= off
                    gfree -= off
                    transit = max(0.0, grecv - max(dispatch, gfree))
                    dispatch = recv - transit / gsize
                    # Same rule on the way back: a completion notice
                    # that sat while its worker computed subsequent
                    # prefetched descriptors was overlapped with
                    # useful work (on a saturated box the parent
                    # could not have run anyway), and that wait
                    # already surfaces as the successors' queueing
                    # delay — charging it to ``retired`` too would
                    # double-count it as IPC.  Subtract the worker's
                    # busy windows from the publish->retire gap and
                    # charge only the uncovered remainder (transit +
                    # parent wake-up + completion processing).
                    defer = max(0.0, retire - gpub)
                    win = busy.get(widx)
                    if defer > 0.0 and win:
                        i = bisect.bisect_left(busy_starts[widx], gpub)
                        while i < len(win) and win[i][0] < retire:
                            lo, hi = win[i]
                            defer -= (min(hi, retire) - max(lo, gpub))
                            i += 1
                        defer = max(0.0, defer)
                    retire = publish + defer / gsize
                measured = True
            elif aborted:
                recv = start = finish = publish = retire
                measured = False
            else:
                # span record dropped: reconstruct the kernel window
                # from the parent-side completion (dt seconds ending
                # at retire), leaving publish/retire attribution empty
                start = retire - dt
                recv, finish, publish = start, retire, retire
                measured = False
            # clamp the 7 boundaries monotone (residual absorption)
            b = [ready, dispatch, recv, start, finish, publish, retire]
            for i in range(1, 7):
                if b[i] < b[i - 1]:
                    b[i] = b[i - 1]
            name = str(task)
            kernel = task.kernel.value
            new_phases.append(TaskPhases(
                tid=tid, name=name, kernel=kernel,
                worker=worker, ready=b[0], dispatch=b[1], recv=b[2],
                start=b[3], finish=b[4], publish=b[5], retire=b[6],
                aborted=aborted, measured=measured))
            new_spans.append(Span(
                tid=tid, name=name, kernel=kernel,
                row=task.row, piv=task.piv, col=task.col, j=task.j,
                worker=worker, submit=b[1], start=b[3], finish=b[4],
                aborted=aborted))
        self._phases.extend(new_phases)
        self._spans_store.extend(new_spans)
        return len(new_phases)

    @property
    def aborted_count(self) -> int:
        return sum(1 for p in self.phases if p.aborted)
