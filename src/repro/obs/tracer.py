"""Span-based tracing of real kernel executions (S17).

A :class:`Tracer` records one :class:`Span` per retired task of the
threaded (or sequential) executor: which kernel ran on which tile
coordinates, on which worker thread, and the three wall-clock
timestamps of its life cycle — *submit* (handed to the pool), *start*
(kernel entry), *finish* (kernel return).  All timestamps come from
:func:`time.perf_counter` and are stored relative to the tracer's
epoch, so a capture starts near ``t = 0``.

The recorder is a single lock-protected append; the executor's hot
path pays nothing when tracing is off because it is handed
:data:`NULL_TRACER` (or ``None``) and skips the calls entirely —
``NullTracer.enabled`` is ``False`` and every method is a no-op.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dag.tasks import Task

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(slots=True)
class Span:
    """One executed task: identity, placement, and wall-clock times.

    Attributes
    ----------
    tid : int
        Task id (index into the graph's task list).
    name : str
        Human label, e.g. ``"TSMQR(3,1,1,2)"``.
    kernel : str
        Kernel class name (``GEQRT`` ... ``TTMQR``).
    row, piv, col, j : int or None
        Tile coordinates of the task (``piv``/``j`` are ``None`` for
        kernels that do not use them).
    worker : int
        Dense worker index (0-based; the order threads first touched
        the tracer).  0 for sequential runs.
    submit, start, finish : float
        Seconds since the tracer's epoch.
    """

    tid: int
    name: str
    kernel: str
    row: int
    piv: Optional[int]
    col: int
    j: Optional[int]
    worker: int
    submit: float
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Kernel wall time in seconds (``finish - start``)."""
        return self.finish - self.start

    @property
    def queue_delay(self) -> float:
        """Seconds spent between submission and kernel entry."""
        return self.start - self.submit


@dataclass
class Tracer:
    """Thread-safe recorder of per-task :class:`Span` objects.

    Workers call :meth:`now` (lock-free) for timestamps and
    :meth:`record` (one short lock) once per retired task.  The span
    buffer is append-only; read it via :attr:`spans` after the run.
    """

    enabled: bool = True
    epoch: float = field(default_factory=time.perf_counter)
    spans: list[Span] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _threads: dict[int, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic, lock-free)."""
        return time.perf_counter() - self.epoch

    def worker_index(self) -> int:
        """Dense 0-based index of the calling thread (first-touch order)."""
        ident = threading.get_ident()
        with self._lock:
            idx = self._threads.get(ident)
            if idx is None:
                idx = len(self._threads)
                self._threads[ident] = idx
            return idx

    def record(self, task: "Task", submit: float, start: float,
               finish: float, worker: int | None = None) -> Span:
        """Append the span of one retired ``task``; returns it."""
        w = self.worker_index() if worker is None else worker
        span = Span(tid=task.tid, name=str(task), kernel=task.kernel.value,
                    row=task.row, piv=task.piv, col=task.col, j=task.j,
                    worker=w, submit=submit, start=start, finish=finish)
        with self._lock:
            self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    @property
    def worker_count(self) -> int:
        """Number of distinct threads that recorded spans."""
        with self._lock:
            n = len(self._threads)
        return max(n, max((s.worker for s in self.spans), default=-1) + 1)

    def makespan(self) -> float:
        """``max(finish) - min(submit)`` over the capture (0 if empty)."""
        if not self.spans:
            return 0.0
        return (max(s.finish for s in self.spans)
                - min(s.submit for s in self.spans))

    def busy_fraction(self) -> float:
        """Fraction of worker-time inside kernels (1.0 = no idling)."""
        span = self.makespan()
        nw = self.worker_count
        if span <= 0 or nw == 0:
            return 1.0
        return sum(s.duration for s in self.spans) / (nw * span)


class NullTracer(Tracer):
    """Tracing disabled: every call is a no-op and records nothing.

    The executor checks :attr:`enabled` once up front and skips all
    per-task tracing work, so the hot path carries no extra locking or
    allocation; these methods exist only so a ``NullTracer`` is also
    safe to call directly.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False, epoch=0.0)

    def now(self) -> float:  # pragma: no cover - trivial
        return 0.0

    def worker_index(self) -> int:  # pragma: no cover - trivial
        return 0

    def record(self, task, submit, start, finish, worker=None):
        return None


#: shared do-nothing tracer; pass this (or ``None``) to disable tracing
NULL_TRACER = NullTracer()
