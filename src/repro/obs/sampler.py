"""Background time-series sampler (S21).

A :class:`Sampler` owns a daemon thread that wakes at a fixed cadence
and records the *current* state of a run into a
:class:`~repro.obs.metrics.MetricsRegistry` — the gauges keep their
``(t, value)`` sample series, so after the run the registry holds a
time series of:

* ``sampler.queue_depth`` — ready-frontier size (from
  :class:`~repro.obs.stream.LiveState`);
* ``sampler.busy_workers`` — workers currently inside a kernel;
* ``sampler.done_tasks`` — retired task count;
* ``sampler.cum_gflops`` / ``sampler.gflop_rate`` — cumulative nominal
  GFLOP retired and the implied GFLOP/s since the sampler started;
* ``sampler.rss_bytes`` — resident set size of the process (Linux
  ``/proc/self/statm``; peak-RSS fallback elsewhere).

The sampler never touches the executor: it reads a
:class:`LiveState` reduction of the event bus (and the OS), so its
cost is one thread waking ``1/interval`` times per second regardless
of task throughput.  Use it as a context manager::

    with Sampler(metrics, state=state):
        execute_graph(plan, tiled, bus=bus, ...)
"""

from __future__ import annotations

import os
import sys
import threading
import time

from .metrics import MetricsRegistry
from .stream import LiveState

__all__ = ["Sampler", "read_rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


#: overridable in tests to force the getrusage fallback
_STATM_PATH = "/proc/self/statm"


def _rusage_rss_bytes(ru_maxrss: int, platform: str) -> int:
    """Normalize a ``ru_maxrss`` reading to bytes.

    POSIX leaves the unit unspecified: macOS reports **bytes**, Linux
    and the BSDs report **kilobytes**.  The old value-based heuristic
    (``> 1 << 32`` means bytes) misclassified every macOS process under
    4 GiB peak RSS, reporting it 1024x too large.
    """
    scale = 1 if platform == "darwin" else 1024
    return int(ru_maxrss) * scale


def read_rss_bytes() -> int:
    """Current resident set size in bytes (best effort, never raises).

    Linux: field 2 of ``/proc/self/statm`` (pages).  Elsewhere: the
    peak RSS from ``resource.getrusage``, normalized per platform
    (bytes on macOS, kilobytes on Linux/BSD — close enough for a trend
    line).  Returns 0 when neither source is available.
    """
    try:
        with open(_STATM_PATH, "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return _rusage_rss_bytes(ru, sys.platform)
    except Exception:
        return 0


class Sampler:
    """Fixed-cadence recorder of live run state into a registry.

    Parameters
    ----------
    metrics : MetricsRegistry
        Destination registry; gauges keep their sample series.
    state : LiveState or None
        Bus reduction to sample.  ``None`` samples only process-level
        series (RSS, tick count).
    interval : float
        Seconds between samples (default 50 ms — cheap enough to be
        invisible next to BLAS work, fine-grained enough to resolve
        every level of a paper-size run).
    rss : bool
        Record ``sampler.rss_bytes`` each tick.
    clock : callable
        Timestamp source for the sample series (default: seconds since
        the sampler was constructed).
    """

    def __init__(self, metrics: MetricsRegistry,
                 state: LiveState | None = None,
                 interval: float = 0.05, rss: bool = True,
                 clock=None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.metrics = metrics
        self.state = state
        self.interval = float(interval)
        self.rss = rss
        self._epoch = time.perf_counter()
        self._clock = clock if clock is not None else (
            lambda: time.perf_counter() - self._epoch)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        #: set when a bounded :meth:`stop` abandoned a stuck tick
        self.join_timed_out = False

    # ------------------------------------------------------------------
    def sample_once(self, t: float | None = None) -> None:
        """Record one sample row (also the unit the thread repeats)."""
        t = self._clock() if t is None else t
        g = self.metrics.gauge
        if self.state is not None:
            v = self.state.view()
            g("sampler.queue_depth").set(v["frontier"], t=t)
            g("sampler.busy_workers").set(v["busy_workers"], t=t)
            g("sampler.done_tasks").set(v["done"], t=t)
            gflops = v["flops"] / 1e9
            g("sampler.cum_gflops").set(gflops, t=t)
            g("sampler.gflop_rate").set(gflops / t if t > 0 else 0.0, t=t)
        if self.rss:
            g("sampler.rss_bytes").set(read_rss_bytes(), t=t)
        self.metrics.counter("sampler.ticks").inc()
        self.ticks += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # ------------------------------------------------------------------
    def start(self) -> "Sampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True,
             timeout: float | None = None) -> bool:
        """Stop the thread; by default records one last sample so the
        series always covers the end of the run.

        The join is **bounded** (default ``max(1.0, 10 * interval)``
        seconds): a tick stalled in ``/proc`` I/O or a blocking clock
        must never hang interpreter shutdown.  On timeout the daemon
        thread is abandoned (it dies with the process),
        :attr:`join_timed_out` is set, the final sample is skipped (the
        stuck tick may still write), and ``False`` is returned.
        Idempotent: repeated calls are no-ops returning the outcome of
        the first.
        """
        thread, self._thread = self._thread, None
        if thread is None:
            return not self.join_timed_out
        self._stop.set()
        if timeout is None:
            timeout = max(1.0, 10.0 * self.interval)
        thread.join(timeout)
        if thread.is_alive():
            self.join_timed_out = True
            return False
        if final_sample:
            self.sample_once()
        return True

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
