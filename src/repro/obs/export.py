"""Metric and event exporters: Prometheus text and JSONL sinks (S21).

Two wire formats alongside the existing Chrome-trace export:

* :func:`prometheus_text` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4) — counters as ``_total`` samples,
  gauges as plain samples, histograms as cumulative ``_bucket{le=...}``
  series with ``_sum``/``_count``.  Metric names are sanitized
  (``kernel.seconds.GEQRT`` → ``repro_kernel_seconds_GEQRT``) so the
  output scrapes cleanly.  :func:`parse_prometheus_text` is the
  matching validating parser (used by the tests and the CI smoke step,
  and handy for reading scraped files back).

* :func:`write_events_jsonl` / :func:`read_events_jsonl` persist an
  event-bus capture as JSON Lines — one compact
  :meth:`~repro.obs.stream.Event.to_dict` object per line, gzip
  transparently when the path ends in ``.gz``.  The JSONL log is the
  machine-readable sibling of the Chrome trace: ``repro analyze
  --from-trace events.jsonl`` rebuilds a schedule report from the
  ``task_done`` events alone.
"""

from __future__ import annotations

import gzip
import io
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .stream import Event

__all__ = [
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
    "write_events_jsonl",
    "read_events_jsonl",
    "sanitize_metric_name",
]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{([^}]*)\})?"                     # optional labels
    r"\s+(-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|[Ii]nf)|NaN|\+Inf)$")
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """A legal Prometheus metric name for a registry metric name."""
    clean = _INVALID.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", clean):
        clean = "_" + clean
    return f"{namespace}_{clean}" if namespace else clean


def _fmt(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry: MetricsRegistry,
                    namespace: str = "repro") -> str:
    """Render every metric of ``registry`` as Prometheus exposition text.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative buckets ending in ``le="+Inf"`` (== ``_count``), plus
    ``_sum`` and ``_count``.  Gauge min/max/samples are not exported —
    Prometheus derives extremes server-side.
    """
    lines: list[str] = []
    for name in registry.names():
        m = registry.get(name)
        full = sanitize_metric_name(name, namespace)
        lines.append(f"# HELP {full} repro metric {name}")
        if isinstance(m, Counter):
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full}_total {_fmt(m.value)}")
        elif isinstance(m, Gauge):
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_fmt(m.value)}")
        elif isinstance(m, Histogram):
            lines.append(f"# TYPE {full} histogram")
            running = 0
            for ub, c in zip(m.buckets, m.counts):
                running += c
                lines.append(f'{full}_bucket{{le="{_fmt(ub)}"}} {running}')
            lines.append(f'{full}_bucket{{le="+Inf"}} {m.count}')
            lines.append(f"{full}_sum {_fmt(m.sum)}")
            lines.append(f"{full}_count {m.count}")
        else:  # pragma: no cover - registry only stores the three types
            raise TypeError(f"unknown metric type {type(m).__name__}")
    return "\n".join(lines) + "\n"


def write_prometheus(path, registry: MetricsRegistry,
                     namespace: str = "repro") -> str:
    """Write the exposition text to ``path``; returns the path."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry, namespace))
    return path


def _parse_labels(raw: str | None) -> dict[str, str]:
    if not raw:
        return {}
    labels = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        m = _LABEL.match(part)
        if m is None:
            raise ValueError(f"malformed label pair {part!r}")
        labels[m.group(1)] = m.group(2)
    return labels


def _base_name(sample_name: str, types: dict[str, str]) -> str | None:
    """Map a sample name back to its declared metric family."""
    if sample_name in types:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in types:
                return base
    return None


def parse_prometheus_text(text: str) -> dict:
    """Parse (and validate) Prometheus exposition text.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value),
    ...]}}``.  Raises :class:`ValueError` on malformed lines, samples
    without a ``# TYPE`` declaration, non-monotone histogram buckets,
    or a ``+Inf`` bucket disagreeing with ``_count``.
    """
    types: dict[str, str] = {}
    samples: dict[str, list] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            _, _, name, mtype = parts
            if mtype not in ("counter", "gauge", "histogram", "summary",
                             "untyped"):
                raise ValueError(
                    f"line {lineno}: unknown metric type {mtype!r}")
            types[name] = mtype
            samples.setdefault(name, [])
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, raw_labels, raw_value = m.groups()
        base = _base_name(name, types)
        if base is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration")
        value = float(raw_value.replace("Inf", "inf"))
        samples[base].append((name, _parse_labels(raw_labels), value))

    out = {}
    for base, mtype in types.items():
        fam = {"type": mtype, "samples": samples.get(base, [])}
        if mtype == "histogram":
            _validate_histogram(base, fam["samples"])
        out[base] = fam
    return out


def _validate_histogram(base: str, fam_samples: list) -> None:
    buckets = [(labels.get("le"), v) for name, labels, v in fam_samples
               if name == f"{base}_bucket"]
    counts = [v for name, _, v in fam_samples if name == f"{base}_count"]
    if not buckets:
        raise ValueError(f"histogram {base} has no buckets")
    values = [v for _, v in buckets]
    if any(b > a for b, a in zip(values, values[1:])):
        raise ValueError(f"histogram {base} buckets are not cumulative")
    if buckets[-1][0] != "+Inf":
        raise ValueError(f"histogram {base} is missing the +Inf bucket")
    if counts and counts[0] != values[-1]:
        raise ValueError(
            f"histogram {base}: +Inf bucket {values[-1]} != "
            f"_count {counts[0]}")


# ----------------------------------------------------------------------
# JSONL event sink
# ----------------------------------------------------------------------

def _open_text(path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_events_jsonl(path, events, append: bool = False) -> str:
    """Write an iterable of :class:`Event` (or event dicts) as JSONL.

    One compact JSON object per line; transparently gzipped when
    ``path`` ends in ``.gz``.  Returns the path.
    """
    import json

    with _open_text(path, "a" if append else "w") as fh:
        for ev in events:
            d = ev.to_dict() if isinstance(ev, Event) else dict(ev)
            fh.write(json.dumps(d, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return path


def read_events_jsonl(source) -> list[Event]:
    """Read a JSONL event log back into :class:`Event` objects.

    ``source`` is a path (gzip-aware) or an open text file.  Blank
    lines are skipped; malformed lines raise :class:`ValueError` with
    the offending line number.
    """
    import json

    if isinstance(source, io.TextIOBase):
        fh, close = source, False
    else:
        fh, close = _open_text(source, "r"), True
    try:
        events = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
                if not isinstance(d, dict) or "kind" not in d:
                    raise ValueError("not an event object")
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: malformed event line: {exc}") from exc
            events.append(Event.from_dict(d))
        return events
    finally:
        if close:
            fh.close()
