"""Planning layer: memoized plans for the plan/execute split (S18).

:func:`plan` turns a problem spec (``"cholesky(t=8)"``) or the
QR-shaped ``(p, q, scheme, family, costs)`` into a :class:`Plan` —
task DAG + CSR graph index + memoized schedules (+ the elimination
list, for QR) — consulting a process-wide LRU cache and an optional
on-disk cache (``REPRO_PLAN_CACHE``).  See :mod:`repro.planner.plan`,
:mod:`repro.planner.cache` and :mod:`repro.problems`.
"""

from .cache import (DEFAULT_CACHE_DIR, PLAN_METRICS, clear_plan_cache,
                    plan_cache_dir, plan_cache_stats)
from .plan import Plan, load_plan, plan, plan_problem, plan_signature, save_plan
from .replay import EtaEstimate, ScheduleReplay

__all__ = [
    "Plan",
    "plan",
    "plan_problem",
    "plan_signature",
    "save_plan",
    "load_plan",
    "ScheduleReplay",
    "EtaEstimate",
    "PLAN_METRICS",
    "plan_cache_stats",
    "clear_plan_cache",
    "plan_cache_dir",
    "DEFAULT_CACHE_DIR",
]
