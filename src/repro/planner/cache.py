"""Process-wide plan cache: LRU memory tier + optional disk tier (S18).

Plans depend only on ``(scheme, params, p, q, kernel family, costs)``
— never on matrix data — so every entry point can share one cached
artifact.  Two tiers:

* **memory** — a thread-safe LRU keyed by the plan signature, always
  on (size via ``REPRO_PLAN_CACHE_SIZE``, default 128, LRU eviction);
* **disk** — ``.npz`` archives in a directory, *off by default*.
  Enabled by setting ``REPRO_PLAN_CACHE`` to a directory path (or to
  ``1``/``on`` for the default ``~/.cache/repro-plans``), or per call
  via ``plan(..., disk_cache=...)``.  ``0``/``off``/``no``/``false``
  disable it explicitly.  Entries are never evicted automatically —
  delete the directory to reclaim space.

Hits, misses, build and load times are recorded in
:data:`PLAN_METRICS`, a process-wide
:class:`~repro.obs.metrics.MetricsRegistry`, so ``repro sweep`` /
``repro profile`` can show exactly what the cache saved.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .plan import Plan

__all__ = ["PLAN_METRICS", "plan_cache_dir", "plan_cache_stats",
           "clear_plan_cache", "DEFAULT_CACHE_DIR", "memory_cache_size"]

#: process-wide registry for plan-cache and plan-build observability
PLAN_METRICS = MetricsRegistry()

#: default disk-cache location when ``REPRO_PLAN_CACHE`` enables it
DEFAULT_CACHE_DIR = Path("~/.cache/repro-plans")

_FALSEY = {"0", "off", "no", "false"}
_TRUTHY = {"1", "on", "yes", "true"}

_lock = threading.Lock()
_memory: "OrderedDict[str, Plan]" = OrderedDict()


def _reinit_after_fork() -> None:  # pragma: no cover - exercised in a
    """Re-create the LRU lock (and drop the LRU) in forked children.

    A fork taken while another thread holds ``_lock`` copies the lock
    *locked* into the child, where ``memory_get`` would deadlock on
    first use; the OrderedDict itself may be mid-mutation at that
    instant, so the child starts from an empty (consistent) cache
    rather than a possibly corrupt snapshot.  ``PLAN_METRICS``' own
    locks are re-created by the registry-level hook in
    :mod:`repro.obs.metrics`.
    """
    global _lock, _memory                # forked child (tests fork)
    _lock = threading.Lock()
    _memory = OrderedDict()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def memory_cache_size() -> int:
    """Capacity of the in-memory LRU (``REPRO_PLAN_CACHE_SIZE``)."""
    raw = os.environ.get("REPRO_PLAN_CACHE_SIZE", "").strip()
    try:
        size = int(raw) if raw else 128
    except ValueError:
        size = 128
    return max(size, 1)


def plan_cache_dir(override: "str | os.PathLike | bool | None" = None,
                  ) -> Optional[Path]:
    """Resolve the disk-cache directory, or ``None`` when disabled.

    ``override`` (the ``disk_cache=`` argument of ``plan``) wins over
    the ``REPRO_PLAN_CACHE`` environment variable; ``True`` selects
    the default location, ``False`` disables the tier.
    """
    if override is not None:
        if override is False:
            return None
        if override is True:
            return DEFAULT_CACHE_DIR.expanduser()
        return Path(override).expanduser()
    raw = os.environ.get("REPRO_PLAN_CACHE", "").strip()
    if not raw or raw.lower() in _FALSEY:
        return None
    if raw.lower() in _TRUTHY:
        return DEFAULT_CACHE_DIR.expanduser()
    return Path(raw).expanduser()


# ----------------------------------------------------------------------
# memory tier
# ----------------------------------------------------------------------

def memory_get(key: str) -> "Optional[Plan]":
    with _lock:
        plan = _memory.get(key)
        if plan is not None:
            _memory.move_to_end(key)
            PLAN_METRICS.counter("plan.cache.memory.hits").inc()
        else:
            PLAN_METRICS.counter("plan.cache.memory.misses").inc()
        return plan


def memory_put(key: str, plan: "Plan") -> None:
    with _lock:
        _memory[key] = plan
        _memory.move_to_end(key)
        size = memory_cache_size()
        while len(_memory) > size:
            _memory.popitem(last=False)
            PLAN_METRICS.counter("plan.cache.memory.evictions").inc()
        PLAN_METRICS.gauge("plan.cache.memory.size",
                           keep_samples=False).set(len(_memory))


def clear_plan_cache() -> None:
    """Drop every in-memory entry (disk entries are left alone)."""
    with _lock:
        _memory.clear()
        PLAN_METRICS.gauge("plan.cache.memory.size",
                           keep_samples=False).set(0)


def plan_cache_stats() -> dict[str, float]:
    """Snapshot of the cache counters (zeros for untouched ones).

    Besides hits/misses this surfaces the failure-path counters: LRU
    ``memory.evictions``, ``disk.load_errors`` (unreadable or stale
    ``.npz`` entries treated as misses), ``disk.write_errors``
    (read-only or full cache directory), and their sum
    ``disk.errors``.
    """
    out = {}
    for name in ("plan.cache.memory.hits", "plan.cache.memory.misses",
                 "plan.cache.memory.evictions", "plan.cache.disk.hits",
                 "plan.cache.disk.misses", "plan.cache.disk.writes",
                 "plan.cache.disk.load_errors",
                 "plan.cache.disk.write_errors"):
        m = PLAN_METRICS.get(name)
        out[name.removeprefix("plan.cache.")] = m.value if m else 0.0
    h = PLAN_METRICS.get("plan.build.seconds")
    out["builds"] = float(h.count) if h else 0.0
    out["build_seconds"] = float(h.sum) if h else 0.0
    out["hits"] = out["memory.hits"] + out["disk.hits"]
    out["disk.errors"] = out["disk.load_errors"] + out["disk.write_errors"]
    return out
