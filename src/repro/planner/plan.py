"""The plan/execute split: build expensive planning artifacts once (S18).

Everything a tiled-QR run needs ahead of the numeric kernels —
elimination list → task DAG → CSR graph index → (optionally) a
schedule — depends only on the *shape* of the problem:
``(scheme, params, p, q, kernel family, costs)``.  A :class:`Plan`
bundles those artifacts; :func:`plan` produces one, consulting the
process-wide cache (:mod:`repro.planner.cache`) so CLI sweeps and
repeated :func:`~repro.core.tiled_qr.tiled_qr` calls on same-shaped
grids skip DAG construction entirely.  This mirrors the plan/execute
separation of PLASMA's dynamic scheduler and the QUARK runtime
(PAPERS.md [12]): dependency analysis is a property of the algorithm,
not of the matrix.

Plans are shared across callers — treat them (and the
:class:`~repro.sim.simulate.SimResult` objects they memoize) as
immutable.  Pass ``cache=False`` (or a custom
:class:`~repro.schemes.elimination.EliminationList`, which is never
cached) to bypass sharing, e.g. when you intend to mutate the graph.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..dag.build import build_dag
from ..dag.index import GraphIndex
from ..dag.tasks import TaskGraph
from ..kernels.costs import KERNEL_WEIGHTS, Kernel, KernelFamily
from ..problems import Problem, QRProblem, get_problem
from ..schemes.elimination import Elimination, EliminationList
from ..schemes.registry import canonical_scheme_spec, get_scheme
from ..sim.simulate import SimResult, simulate_bounded, simulate_unbounded
from . import cache as _cache
from ..core._npz import pack_meta, unpack_meta

__all__ = ["Plan", "plan", "plan_problem", "plan_signature",
           "save_plan", "load_plan"]

_FORMAT_VERSION = 2


def _normalize_costs(costs) -> Optional[dict[Kernel, float]]:
    if costs is None:
        return None
    return {Kernel(k): float(v) for k, v in costs.items()}


def plan_signature(
    spec: str, p: int, q: int,
    family: Optional[KernelFamily],
    costs: Optional[dict[Kernel, float]] = None,
    *,
    problem: str = "qr",
) -> str:
    """Stable cache key of a plan.

    Covers every input the planning artifacts depend on — problem
    family, canonical spec (name + params), grid shape, kernel family
    (``None`` for families without the TT/TS distinction), and any
    cost overrides — so two plans share a key iff they are
    interchangeable.  Including ``problem`` keeps same-shaped plans of
    different families (a ``15 x 6`` QR vs LU grid, say) from ever
    aliasing in the LRU or the disk tier.
    """
    payload = {
        "v": _FORMAT_VERSION,
        "problem": str(problem),
        "scheme": spec,
        "p": int(p),
        "q": int(q),
        "family": None if family is None else str(KernelFamily(family)),
        "costs": None if not costs else
                 {k.value: float(v) for k, v in sorted(
                     costs.items(), key=lambda kv: kv[0].value)},
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
    return digest[:32]


@dataclass
class Plan:
    """Reusable planning artifacts of one factorization shape.

    Attributes
    ----------
    p, q : int
        Tile-grid dimensions.
    family : KernelFamily or None
        Kernel family the DAG was built for; ``None`` for problem
        families without the TT/TS distinction (Cholesky, LU).
    scheme : str or None
        Canonical spec that keyed the plan — a scheme spec
        (``"plasma-tree(bs=5)"``) for QR, a problem spec
        (``"cholesky(t=8)"``) otherwise; ``None`` for plans built from
        a custom elimination list.
    elims : EliminationList or None
        The elimination list (QR only; ``None`` for other families).
    graph : TaskGraph
    problem : str
        Problem family name (``"qr"``, ``"cholesky"``, ``"lu"``).
    costs : dict or None
        Per-kernel weight overrides baked into the graph (``None`` =
        Table 1).
    key : str or None
        Cache signature; ``None`` for uncacheable custom plans.
    built_seconds : float
        Wall-clock spent building (0 when loaded from cache).
    """

    p: int
    q: int
    family: Optional[KernelFamily]
    scheme: Optional[str]
    elims: Optional[EliminationList]
    graph: TaskGraph
    problem: str = "qr"
    costs: Optional[dict[Kernel, float]] = None
    key: Optional[str] = None
    built_seconds: float = 0.0
    _unbounded: Optional[SimResult] = field(
        default=None, repr=False, compare=False)
    _schedules: dict = field(default_factory=dict, repr=False, compare=False)
    _bottom_levels: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False)
    _level_groups: Optional[list] = field(
        default=None, repr=False, compare=False)
    _dispatch_arrays: Optional[object] = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def index(self) -> GraphIndex:
        """The graph's CSR index (memoized on the graph)."""
        return self.graph.index()

    def __len__(self) -> int:
        return len(self.graph)

    def unbounded(self) -> SimResult:
        """Memoized unbounded-processor (ASAP) simulation."""
        if self._unbounded is None:
            self._unbounded = simulate_unbounded(self)
        return self._unbounded

    def critical_path(self) -> float:
        """Critical path length in the plan's time units."""
        return self.unbounded().makespan

    def zero_out_steps(self) -> np.ndarray:
        """The paper's Table-3-style matrix of tile zero-out times."""
        return self.unbounded().zero_out_table()

    def schedule(self, processors: Optional[int] = None,
                 priority: str | np.ndarray = "critical-path") -> SimResult:
        """A (memoized) schedule of the plan.

        ``processors=None`` gives the unbounded ASAP schedule;
        otherwise bounded list scheduling.  Results for named priority
        policies are memoized on the plan; explicit priority vectors
        are simulated fresh each call.
        """
        if processors is None:
            return self.unbounded()
        if isinstance(priority, str):
            mkey = (int(processors), priority)
            res = self._schedules.get(mkey)
            if res is None:
                res = simulate_bounded(self, processors, priority)
                self._schedules[mkey] = res
            return res
        return simulate_bounded(self, processors, priority)

    def bottom_levels(self) -> np.ndarray:
        """Memoized per-task bottom levels (critical-path priority).

        Used by the threaded executor's priority ready-queue and the
        bounded simulator; see :func:`repro.sim.simulate.bottom_levels`.
        """
        if self._bottom_levels is None:
            from ..sim.simulate import bottom_levels
            self._bottom_levels = bottom_levels(self)
        return self._bottom_levels

    def level_groups(self) -> list:
        """Memoized (Kahn level, kernel) task groups of the DAG.

        The unit of work of the batched backend; see
        :func:`repro.runtime.batched.level_kernel_groups`.
        """
        if self._level_groups is None:
            from ..runtime.batched import level_kernel_groups
            self._level_groups = level_kernel_groups(self.graph)
        return self._level_groups

    def dispatch_arrays(self):
        """Memoized flat per-task dispatch/groupability arrays.

        Kernel codes, tile coordinates and T-store slot assignments,
        aligned by tid — what the process backend's group-aware
        frontier indexes; see
        :func:`repro.runtime.groups.dispatch_arrays`.  Cached here so
        a persistent pool skips the O(tasks) flattening on every run
        and micro-batch formation stays O(frontier).
        """
        if self._dispatch_arrays is None:
            from ..runtime.groups import dispatch_arrays
            self._dispatch_arrays = dispatch_arrays(self.graph)
        return self._dispatch_arrays

    def total_weight(self) -> float:
        """Sum of task weights."""
        return self.graph.total_weight()

    def replay(self, processors: Optional[int] = None,
               priority: str = "critical-path"):
        """A :class:`~repro.planner.replay.ScheduleReplay` over the
        plan's memoized schedule — the live-ETA primitive of
        ``--progress`` and ``repro top``: realized (done, elapsed)
        progress maps onto the simulated schedule to predict the wall
        makespan while the run is still going.
        """
        from .replay import ScheduleReplay
        return ScheduleReplay(self.schedule(processors, priority))

    def rescaled(self, costs: dict) -> "Plan":
        """A derived plan with per-kernel weights replaced.

        Shares the elimination list and the index's structural arrays;
        only weights differ.  Used to feed *measured* kernel times into
        the simulator.  The derived plan is not cached.
        """
        merged = dict(KERNEL_WEIGHTS)
        merged.update(_normalize_costs(costs))
        graph = self.graph.rescale(merged)
        graph._index = self.index.with_weights(
            np.fromiter((merged[t.kernel] for t in graph.tasks),
                        dtype=np.float64, count=len(graph.tasks)))
        return Plan(p=self.p, q=self.q, family=self.family,
                    scheme=self.scheme, elims=self.elims, graph=graph,
                    problem=self.problem, costs=merged, key=None)


# ----------------------------------------------------------------------
# building and caching
# ----------------------------------------------------------------------

def _build(spec_or_elims, p: int, q: int, family: KernelFamily,
           costs: Optional[dict[Kernel, float]], key: Optional[str],
           **params) -> Plan:
    t0 = time.perf_counter()
    if isinstance(spec_or_elims, EliminationList):
        elims, scheme = spec_or_elims, None
    else:
        elims = get_scheme(spec_or_elims, p, q, **params)
        scheme = spec_or_elims
    graph = build_dag(elims, family)
    if costs:
        merged = dict(KERNEL_WEIGHTS)
        merged.update(costs)
        graph = graph.rescale(merged)
    graph.index()  # part of the plan: simulations reuse it for free
    built = time.perf_counter() - t0
    _cache.PLAN_METRICS.histogram("plan.build.seconds").observe(built)
    return Plan(p=p, q=q, family=family, scheme=scheme, elims=elims,
                graph=graph, costs=costs, key=key, built_seconds=built)


def _build_problem(problem: Problem,
                   costs: Optional[dict[Kernel, float]],
                   key: Optional[str]) -> Plan:
    t0 = time.perf_counter()
    elims, graph = problem.build()
    if costs:
        merged = dict(KERNEL_WEIGHTS)
        merged.update(costs)
        graph = graph.rescale(merged)
    graph.index()  # part of the plan: simulations reuse it for free
    built = time.perf_counter() - t0
    _cache.PLAN_METRICS.histogram("plan.build.seconds").observe(built)
    return Plan(p=problem.p, q=problem.q, family=problem.family,
                scheme=problem.spec(), elims=elims, graph=graph,
                problem=problem.name, costs=costs, key=key,
                built_seconds=built)


def plan_problem(
    problem,
    *,
    costs=None,
    cache: bool = True,
    disk_cache=None,
    **params,
) -> Plan:
    """Build (or fetch from cache) the :class:`Plan` of any problem.

    The problem-generic planning entry point: accepts a
    :class:`~repro.problems.Problem`, a problem spec string
    (``"cholesky(t=8)"``, ``"lu(p=8, q=8)"``, ``"qr(p=8, q=4,
    scheme='greedy')"``), or a family name plus keyword parameters.
    QR problems route through the legacy QR cache key, so
    ``plan_problem("qr", p=8, q=4)`` and ``plan(8, 4)`` share one
    cache entry.

    ``costs`` / ``cache`` / ``disk_cache`` behave exactly as in
    :func:`plan`.
    """
    problem = get_problem(problem, **params)

    if isinstance(problem, QRProblem):
        # one canonical key per QR shape, shared with the legacy path
        return plan(problem.p, problem.q, problem.scheme,
                    problem.kernel_family, costs=costs, cache=cache,
                    disk_cache=disk_cache)

    costs = _normalize_costs(costs)
    spec = problem.spec()
    key = plan_signature(spec, problem.p, problem.q, problem.family,
                         costs, problem=problem.name)

    if not cache:
        return _build_problem(problem, costs, key=key)

    cached = _cache.memory_get(key)
    if cached is not None:
        return cached

    cache_dir = _cache.plan_cache_dir(disk_cache)
    if cache_dir is not None:
        loaded = _load_from_dir(cache_dir, key)
        if loaded is not None:
            _cache.memory_put(key, loaded)
            return loaded

    built = _build_problem(problem, costs, key=key)
    _cache.memory_put(key, built)
    if cache_dir is not None:
        _save_to_dir(cache_dir, built)
    return built


def plan(*args, costs=None, cache: bool = True, disk_cache=None,
         **kwargs) -> Plan:
    """Build (or fetch from cache) the :class:`Plan` for one shape.

    Two calling conventions:

    * **problem-centric** — first argument is a problem spec string or
      :class:`~repro.problems.Problem`::

          plan("cholesky(t=8)")
          plan("lu", p=8, q=8)
          plan("qr(p=8, q=4, scheme='greedy')")

    * **QR-shaped (legacy)** — first two arguments are the grid::

          plan(8, 4, "greedy")

      which is exactly ``plan("qr", p=8, q=4, scheme="greedy")``; the
      two forms share one cache entry per shape.

    Parameters
    ----------
    p, q : int
        Tile-grid dimensions, ``p >= q >= 1`` (QR-shaped form).
    scheme : str, EliminationList, or Plan
        Scheme name or spec (``"greedy"``, ``"plasma(bs=5)"``), a
        prebuilt elimination list (never cached), or an existing Plan
        (validated against ``p``/``q``/``family`` and returned as-is).
    family : {"TT", "TS"}
        Kernel family (Section 2.1).
    costs : mapping of Kernel -> float, optional
        Per-kernel weight overrides (e.g. measured seconds).  Part of
        the cache key — plans with different costs never alias.
    cache : bool
        ``False`` bypasses both cache tiers (always builds fresh, does
        not store).  Use when you intend to mutate the result.
    disk_cache : path-like, bool, or None
        Override for the disk tier: a directory, ``True`` (default
        location), ``False`` (disable).  ``None`` defers to the
        ``REPRO_PLAN_CACHE`` environment variable.
    **params
        Scheme parameters (``bs=...``, ``k=...``) in the QR-shaped
        form; problem parameters (``t=...``, ``p=...``) in the
        problem-centric form.  They override identically named inline
        spec parameters.

    Returns
    -------
    Plan
        Shared with other callers when cached — treat as immutable.
    """
    if args and isinstance(args[0], (str, Problem)):
        if len(args) > 1:
            raise TypeError(
                "plan(problem_spec) takes no positional grid; pass "
                "parameters as keywords, e.g. plan('lu', p=8, q=8)")
        return plan_problem(args[0], costs=costs, cache=cache,
                            disk_cache=disk_cache, **kwargs)

    # QR-shaped (legacy) form: bind p, q, scheme, family by hand so the
    # problem form above may reuse the names p/q as *problem* keywords.
    names = ("p", "q", "scheme", "family")
    if len(args) > len(names):
        raise TypeError(
            f"plan() takes at most {len(names)} positional arguments "
            f"({len(args)} given)")
    bound: dict = {"scheme": "greedy", "family": KernelFamily.TT}
    for name, value in zip(names, args):
        bound[name] = value
    for name in names:
        if name in kwargs:
            if name in dict(zip(names, args)):
                raise TypeError(
                    f"plan() got multiple values for argument {name!r}")
            bound[name] = kwargs.pop(name)
    if "p" not in bound or "q" not in bound:
        raise TypeError(
            "plan() needs a problem spec (plan('cholesky(t=8)')) or a "
            "grid (plan(p, q, scheme))")
    p, q, scheme = bound["p"], bound["q"], bound["scheme"]
    params = kwargs

    family = KernelFamily(bound["family"])
    costs = _normalize_costs(costs)

    if isinstance(scheme, Plan):
        if (scheme.p, scheme.q) != (p, q):
            raise ValueError(
                f"plan is for a {scheme.p} x {scheme.q} grid, "
                f"requested {p} x {q}")
        if scheme.family is not family:
            raise ValueError(
                f"plan was built for family {scheme.family}, "
                f"requested {family}")
        return scheme

    if isinstance(scheme, EliminationList):
        if (scheme.p, scheme.q) != (p, q):
            raise ValueError(
                f"elimination list is for a {scheme.p} x {scheme.q} grid, "
                f"requested {p} x {q}")
        return _build(scheme, p, q, family, costs, key=None)

    if not isinstance(scheme, str):
        raise TypeError(
            "scheme must be a scheme name/spec string, an EliminationList, "
            f"or a Plan, got {type(scheme).__name__}")

    spec = canonical_scheme_spec(scheme, params)
    key = plan_signature(spec, p, q, family, costs)

    if not cache:
        return _build(spec, p, q, family, costs, key=key)

    cached = _cache.memory_get(key)
    if cached is not None:
        return cached

    cache_dir = _cache.plan_cache_dir(disk_cache)
    if cache_dir is not None:
        loaded = _load_from_dir(cache_dir, key)
        if loaded is not None:
            _cache.memory_put(key, loaded)
            return loaded

    built = _build(spec, p, q, family, costs, key=key)
    _cache.memory_put(key, built)
    if cache_dir is not None:
        _save_to_dir(cache_dir, built)
    return built


# ----------------------------------------------------------------------
# disk format
# ----------------------------------------------------------------------

def save_plan(p: Plan, path) -> None:
    """Persist a plan to ``path`` (an ``.npz`` archive).

    Stores the elimination list and the task graph in flat-array form
    (:meth:`TaskGraph.to_arrays`), so loading skips dataflow inference.
    """
    meta = {
        "version": _FORMAT_VERSION,
        "problem": p.problem,
        "p": p.p,
        "q": p.q,
        "family": None if p.family is None else str(p.family),
        "scheme": p.scheme,
        "elims_name": None if p.elims is None else p.elims.name,
        "graph_name": p.graph.name,
        "key": p.key,
        "costs": None if not p.costs else
                 {k.value: float(v) for k, v in p.costs.items()},
    }
    arrays = {f"g_{name}": arr for name, arr in p.graph.to_arrays().items()}
    elim_rows = [] if p.elims is None else [list(e) for e in p.elims]
    arrays["elims"] = np.array(elim_rows, dtype=np.int32).reshape(-1, 3)
    arrays["meta"] = pack_meta(meta)
    np.savez_compressed(path, **arrays)


def load_plan(path) -> Plan:
    """Restore a plan saved by :func:`save_plan`."""
    with np.load(path) as data:
        meta = unpack_meta(data)
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan format {meta.get('version')!r}")
        if meta.get("elims_name") is None:
            elims = None
        else:
            elims = EliminationList(
                meta["p"], meta["q"],
                [Elimination(*row) for row in data["elims"].tolist()],
                name=meta["elims_name"])
        graph = TaskGraph.from_arrays(
            meta["p"], meta["q"], meta["graph_name"],
            {name[2:]: data[name] for name in data.files
             if name.startswith("g_")})
    graph.problem = meta.get("problem", "qr")
    costs = meta.get("costs")
    family = meta.get("family")
    return Plan(p=meta["p"], q=meta["q"],
                family=None if family is None else KernelFamily(family),
                scheme=meta.get("scheme"), elims=elims, graph=graph,
                problem=meta.get("problem", "qr"),
                costs=None if not costs else
                      {Kernel(k): v for k, v in costs.items()},
                key=meta.get("key"))


def _load_from_dir(cache_dir: Path, key: str) -> Optional[Plan]:
    path = cache_dir / f"{key}.npz"
    if not path.is_file():
        _cache.PLAN_METRICS.counter("plan.cache.disk.misses").inc()
        return None
    t0 = time.perf_counter()
    try:
        loaded = load_plan(path)
        if loaded.key != key:
            raise ValueError("plan signature mismatch")
    except Exception:
        # unreadable/stale entry: treat as a miss and let the fresh
        # build overwrite it
        _cache.PLAN_METRICS.counter("plan.cache.disk.load_errors").inc()
        _cache.PLAN_METRICS.counter("plan.cache.disk.misses").inc()
        return None
    _cache.PLAN_METRICS.counter("plan.cache.disk.hits").inc()
    _cache.PLAN_METRICS.histogram("plan.cache.disk.load_seconds").observe(
        time.perf_counter() - t0)
    return loaded


def _save_to_dir(cache_dir: Path, p: Plan) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cache_dir / f".{p.key}.{os.getpid()}.tmp.npz"
        save_plan(p, tmp)
        os.replace(tmp, cache_dir / f"{p.key}.npz")
        _cache.PLAN_METRICS.counter("plan.cache.disk.writes").inc()
    except OSError:
        # a read-only or full cache directory must never fail the run
        _cache.PLAN_METRICS.counter("plan.cache.disk.write_errors").inc()
