"""Progress-vs-simulation replay: live ETA from a memoized schedule (S21).

A :class:`Plan` memoizes simulated schedules of its DAG (unbounded
ASAP or bounded list scheduling, in abstract Table-1 time units).
While a *real* factorization of the same plan runs, the only live
signals are "how many tasks have retired" and "how much wall time has
passed".  :class:`ScheduleReplay` maps those two numbers back onto the
simulated schedule:

* the simulated time by which the same number of tasks had finished
  (``sim_time_at``) gives the *model progress point*;
* ``elapsed / sim_time`` is the current model-unit → wall-second
  exchange rate, assumed locally constant;
* scaling the simulated makespan by that rate predicts the total wall
  makespan, hence the ETA.

As ``done → total`` the predicted makespan converges to the realized
one exactly (the exchange rate is then measured over the whole run).
The **drift** — predicted makespan now vs the first prediction —
surfaces how far reality diverges from the model *while the run is
still going*: positive drift means the machine is slower (or the
schedule less parallel) than the simulator assumed.

This is deliberately simulation-shape-aware: a run that retires many
cheap TT kernels first moves through simulated time differently than
one chewing on TSMQR batches, and replaying against the actual
schedule captures that, unlike a naive ``elapsed / fraction_done``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["EtaEstimate", "ScheduleReplay"]


@dataclass(frozen=True)
class EtaEstimate:
    """One live prediction from :meth:`ScheduleReplay.estimate`.

    ``predicted_makespan``/``remaining``/``drift`` are ``None`` until
    at least one task has retired (no exchange rate yet).
    """

    done: int
    total: int
    elapsed: float
    sim_time: float             #: simulated time at this progress point
    sim_fraction: float         #: sim_time / simulated makespan
    predicted_makespan: Optional[float]
    remaining: Optional[float]
    drift: Optional[float]      #: predicted vs first prediction, -1..inf

    @property
    def fraction(self) -> float:
        """Task-count completion fraction (0..1)."""
        return self.done / self.total if self.total else 1.0

    def to_dict(self) -> dict:
        return {
            "done": self.done, "total": self.total,
            "elapsed": self.elapsed, "sim_time": self.sim_time,
            "sim_fraction": self.sim_fraction,
            "predicted_makespan": self.predicted_makespan,
            "remaining": self.remaining, "drift": self.drift,
        }


class ScheduleReplay:
    """Replay realized progress against a simulated schedule.

    Built from any :class:`~repro.sim.simulate.SimResult` of the same
    DAG — usually via :meth:`repro.planner.Plan.replay`, which uses
    the plan's memoized schedules.  Thread-safe for concurrent
    :meth:`estimate` calls (state is one scalar, written atomically).
    """

    def __init__(self, sim) -> None:
        self.sim_makespan = float(sim.makespan)
        self.total = int(len(sim.finish))
        #: simulated finish times, ascending — ``_finish[d-1]`` is the
        #: simulated time by which ``d`` tasks had retired
        self._finish = np.sort(np.asarray(sim.finish, dtype=np.float64))
        self._first_predicted: Optional[float] = None

    # ------------------------------------------------------------------
    def sim_time_at(self, done: int) -> float:
        """Simulated time by which ``done`` tasks had finished."""
        if done <= 0 or self.total == 0:
            return 0.0
        return float(self._finish[min(done, self.total) - 1])

    def estimate(self, done: int, elapsed: float) -> EtaEstimate:
        """Predict the run's wall makespan from live progress.

        Parameters
        ----------
        done : int
            Tasks retired so far.
        elapsed : float
            Wall seconds since the run started.
        """
        sim_t = self.sim_time_at(done)
        sim_frac = sim_t / self.sim_makespan if self.sim_makespan else 1.0
        if sim_t <= 0.0 or elapsed <= 0.0:
            predicted = remaining = drift = None
        else:
            scale = elapsed / sim_t
            predicted = self.sim_makespan * scale
            remaining = max(0.0, predicted - elapsed)
            if self._first_predicted is None:
                self._first_predicted = predicted
            drift = predicted / self._first_predicted - 1.0
        return EtaEstimate(
            done=int(done), total=self.total, elapsed=float(elapsed),
            sim_time=sim_t, sim_fraction=sim_frac,
            predicted_makespan=predicted, remaining=remaining, drift=drift)

    @property
    def first_predicted(self) -> Optional[float]:
        """The earliest makespan prediction made (the drift baseline)."""
        return self._first_predicted

    def reset(self) -> None:
        """Forget the first prediction (fresh drift baseline)."""
        self._first_predicted = None
