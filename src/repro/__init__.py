"""repro — Tiled QR factorization algorithms.

A production-quality reproduction of *Bouwmeester, Jacquelin, Langou,
Robert — "Tiled QR factorization algorithms"* (INRIA RR-7601 / SC'11):
the six tile kernels, every elimination-tree algorithm the paper
studies (FlatTree/Sameh-Kuck, Fibonacci, Greedy, Asap, Grasap,
BinaryTree, PlasmaTree), the critical-path discrete-event simulator,
the closed-form analysis, execution runtimes, and the benchmark
harness that regenerates every table and figure of the evaluation.

Quick start (the :mod:`repro.api` facade)::

    import numpy as np
    from repro import plan, factor, simulate

    pl = plan(8, 4, "greedy")            # cached planning artifacts
    simulate(pl, processors=4).makespan  # schedule it
    a = np.random.default_rng(0).standard_normal((400, 200))
    f = factor(a, nb=50, scheme="greedy")
    assert f.residual(a) < 1e-12

The legacy entry points (:func:`tiled_qr`, :func:`critical_path`)
remain and route through the same plan cache.
"""

from .api import ExecOptions, analyze, factor, plan, plan_problem, simulate
from .core.auto import SchemeChoice, select_scheme
from .core.paths import critical_path, zero_out_steps
from .core.serialize import load_factorization, save_factorization
from .core.tiled_qr import TiledQRFactorization, tiled_qr
from .kernels.costs import Kernel, KernelFamily, total_weight
from .planner import Plan, clear_plan_cache, plan_cache_stats
from .problems import Problem, available_problems, get_problem
from .schemes.registry import (
    available_schemes,
    get_scheme,
    parse_scheme_spec,
)

__version__ = "1.2.0"

__all__ = [
    "plan",
    "plan_problem",
    "factor",
    "simulate",
    "analyze",
    "Plan",
    "Problem",
    "ExecOptions",
    "available_problems",
    "get_problem",
    "plan_cache_stats",
    "clear_plan_cache",
    "tiled_qr",
    "TiledQRFactorization",
    "critical_path",
    "zero_out_steps",
    "save_factorization",
    "load_factorization",
    "select_scheme",
    "SchemeChoice",
    "available_schemes",
    "get_scheme",
    "parse_scheme_spec",
    "Kernel",
    "KernelFamily",
    "total_weight",
    "__version__",
]
