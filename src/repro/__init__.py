"""repro — Tiled QR factorization algorithms.

A production-quality reproduction of *Bouwmeester, Jacquelin, Langou,
Robert — "Tiled QR factorization algorithms"* (INRIA RR-7601 / SC'11):
the six tile kernels, every elimination-tree algorithm the paper
studies (FlatTree/Sameh-Kuck, Fibonacci, Greedy, Asap, Grasap,
BinaryTree, PlasmaTree), the critical-path discrete-event simulator,
the closed-form analysis, execution runtimes, and the benchmark
harness that regenerates every table and figure of the evaluation.

Quick start::

    import numpy as np
    from repro import tiled_qr, critical_path

    a = np.random.default_rng(0).standard_normal((400, 200))
    f = tiled_qr(a, nb=50, scheme="greedy")
    assert f.residual(a) < 1e-12

    critical_path("greedy", 40, 10)      # the paper's central metric
"""

from .core.auto import SchemeChoice, select_scheme
from .core.paths import critical_path, zero_out_steps
from .core.serialize import load_factorization, save_factorization
from .core.tiled_qr import TiledQRFactorization, tiled_qr
from .kernels.costs import Kernel, KernelFamily, total_weight
from .schemes.registry import available_schemes, get_scheme

__version__ = "1.0.0"

__all__ = [
    "tiled_qr",
    "TiledQRFactorization",
    "critical_path",
    "zero_out_steps",
    "save_factorization",
    "load_factorization",
    "select_scheme",
    "SchemeChoice",
    "available_schemes",
    "get_scheme",
    "Kernel",
    "KernelFamily",
    "total_weight",
    "__version__",
]
