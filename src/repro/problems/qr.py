"""Tiled QR as a registered :class:`Problem` family.

Wraps the existing pipeline — scheme registry → elimination list →
:func:`~repro.dag.build.build_dag` — behind the problem interface, so
``plan("qr(p=8, q=4, scheme='greedy')")`` is exactly the DAG of
``plan(8, 4, "greedy")``.  The planner routes :class:`QRProblem`
through the legacy QR cache key, so both entry points share one cache
entry per shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dag.build import build_dag
from ..dag.tasks import TaskGraph
from ..kernels.costs import QR_KERNELS, KernelFamily
from ..schemes.elimination import EliminationList
from ..schemes.registry import canonical_scheme_spec, get_scheme
from .base import Problem

__all__ = ["QRProblem"]


@dataclass(frozen=True, init=False)
class QRProblem(Problem):
    """``qr(p, q, scheme=..., family=...)`` — the source paper's DAGs.

    ``scheme`` accepts any scheme name/spec the registry knows
    (including inline parameters: ``scheme='plasma(bs=5)'``) and is
    normalized to its canonical spec on construction.
    """

    name = "qr"
    kernels = QR_KERNELS

    grid_p: int
    grid_q: int
    scheme: str = "greedy"
    kernel_family: KernelFamily = KernelFamily.TT

    def __init__(self, p: int, q: int, scheme: str = "greedy",
                 family: KernelFamily | str = KernelFamily.TT):
        p, q = int(p), int(q)
        if not (p >= q >= 1):
            raise ValueError(f"qr needs p >= q >= 1, got p={p}, q={q}")
        object.__setattr__(self, "grid_p", p)
        object.__setattr__(self, "grid_q", q)
        object.__setattr__(self, "scheme", canonical_scheme_spec(scheme))
        object.__setattr__(self, "kernel_family", KernelFamily(family))

    @property
    def p(self) -> int:
        return self.grid_p

    @property
    def q(self) -> int:
        return self.grid_q

    @property
    def family(self) -> Optional[KernelFamily]:
        return self.kernel_family

    def params(self) -> dict:
        return {"p": self.grid_p, "q": self.grid_q, "scheme": self.scheme,
                "family": str(self.kernel_family)}

    def label(self) -> str:
        return f"qr[{self.kernel_family}]"

    def build(self) -> tuple[Optional[EliminationList], TaskGraph]:
        elims = get_scheme(self.scheme, self.grid_p, self.grid_q)
        graph = build_dag(elims, self.kernel_family)
        graph.problem = self.name
        return elims, graph
