"""Tiled Cholesky factorization DAG (Bouwmeester thesis, arxiv 1303.3182).

Right-looking tiled Cholesky of a ``t x t`` tile grid, four kernels in
the same ``nb^3/3`` time unit as the QR Table 1:

=========  ==========================================  ======
Kernel     Operation                                   Weight
=========  ==========================================  ======
``POTRF``  Cholesky of diagonal tile ``A[k][k]``          1
``TRSM``   ``A[i][k] <- A[i][k] L[k][k]^-T``              3
``SYRK``   ``A[i][i] <- A[i][i] - A[i][k] A[i][k]^T``     3
``GEMM``   ``A[i][j] <- A[i][j] - A[i][k] A[j][k]^T``     6
=========  ==========================================  ======

Total weight over the grid is exactly ``t^3`` — the classical
``n^3/3`` flops.  Dependencies are inferred superscalar-style from
per-tile read/write sets with the same :class:`DataflowTracker` the QR
builder uses; because each tile ``A[i][k]`` becomes read-only once its
own TRSM has run, the plain one-resource-per-tile model already yields
the exact PLASMA DAG (no V=NODEP-style relaxation is needed).

The critical path in these units is ``9t - 10`` for ``t >= 2`` (and
``1`` for ``t = 1``): the chain POTRF(0) → TRSM(1,0) → GEMM(2,1,0) →
TRSM/GEMM ... advances one column per ``3 + 6 = 9`` units.  The golden
tests pin this table and the simulator reproduces it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dag.build import DataflowTracker
from ..dag.tasks import TaskGraph
from ..kernels.costs import CHOLESKY_KERNELS, Kernel
from ..schemes.elimination import EliminationList
from .base import Problem

__all__ = ["CholeskyProblem", "build_cholesky_dag", "cholesky_critical_path"]


def cholesky_critical_path(t: int) -> int:
    """Closed-form critical path of tiled Cholesky on ``t x t`` tiles.

    ``9t - 10`` time units for ``t >= 2``; a single POTRF (1) for
    ``t = 1``.  This is the weighted-DAG analogue of the ALAP analysis
    in Quach & Langou (arxiv 1510.05107).
    """
    if t < 1:
        raise ValueError(f"need t >= 1, got {t}")
    return 1 if t == 1 else 9 * t - 10


def build_cholesky_dag(t: int) -> TaskGraph:
    """Build the tiled-Cholesky kernel DAG for a ``t x t`` tile grid.

    Tasks are emitted in right-looking program order (factor panel
    ``k``, then update the trailing submatrix) and dependencies are
    inferred from per-tile read/write sets.
    """
    if t < 1:
        raise ValueError(f"need t >= 1, got {t}")
    g = TaskGraph(t, t, name=f"cholesky(t={t})", problem="cholesky")
    flow = DataflowTracker()

    def _r(i, j):  # one resource per lower-triangular tile
        return i * t + j

    def emit(kernel, row, piv, col, j, reads, writes):
        deps: list[int] = []
        for res in reads:
            deps.extend(flow.read(res))
        for res in writes:
            deps.extend(flow.write(res))
        task = g.add(kernel, row, piv, col, j, deps)
        for res in reads:
            flow.note_read(res, task.tid)
        for res in writes:
            flow.note_write(res, task.tid)
        return task

    for k in range(t):
        emit(Kernel.POTRF, k, None, k, None,
             reads=(), writes=(_r(k, k),))
        for i in range(k + 1, t):
            emit(Kernel.TRSM, i, None, k, None,
                 reads=(_r(k, k),), writes=(_r(i, k),))
        for i in range(k + 1, t):
            emit(Kernel.SYRK, i, None, k, None,
                 reads=(_r(i, k),), writes=(_r(i, i),))
            for j in range(k + 1, i):
                emit(Kernel.GEMM, i, None, k, j,
                     reads=(_r(i, k), _r(j, k)), writes=(_r(i, j),))
    return g


@dataclass(frozen=True, init=False)
class CholeskyProblem(Problem):
    """``cholesky(t)`` — tiled Cholesky on a ``t x t`` tile grid."""

    name = "cholesky"
    kernels = CHOLESKY_KERNELS

    t: int

    def __init__(self, t: int):
        t = int(t)
        if t < 1:
            raise ValueError(f"cholesky needs t >= 1, got t={t}")
        object.__setattr__(self, "t", t)

    @property
    def p(self) -> int:
        return self.t

    @property
    def q(self) -> int:
        return self.t

    def params(self) -> dict:
        return {"t": self.t}

    def build(self) -> tuple[Optional[EliminationList], TaskGraph]:
        return None, build_cholesky_dag(self.t)
