"""Problem registry: resolve problem specs to DAG builders.

The problem-centric face of the planner (ROADMAP: "generalize to
arbitrary tile DAGs").  A *problem spec* bundles a family name and its
parameters in one string, parsed by the same grammar as scheme specs:

>>> from repro.problems import get_problem
>>> get_problem("cholesky(t=8)").spec()
'cholesky(t=8)'
>>> get_problem("qr", p=8, q=4, scheme="greedy").label()
'qr[TT]'
>>> get_problem("lu(p=8, q=8)").kernels[0].value
'GETRF'

Like the scheme registry, parsing lives in exactly one place:
:func:`parse_problem_spec` reuses the scheme-spec grammar (names are
case-insensitive, underscores normalize to hyphens, values parse as
int/float/quoted string, and quoted parameters may contain nested
specs such as ``scheme='plasma(bs=5)'``).
"""

from __future__ import annotations

from ..schemes.registry import parse_scheme_spec
from .base import Problem
from .cholesky import CholeskyProblem, build_cholesky_dag, cholesky_critical_path
from .lu import LUProblem, build_lu_dag
from .qr import QRProblem

__all__ = [
    "Problem",
    "QRProblem",
    "CholeskyProblem",
    "LUProblem",
    "PROBLEMS",
    "PROBLEM_ALIASES",
    "get_problem",
    "available_problems",
    "parse_problem_spec",
    "canonical_problem_spec",
    "build_cholesky_dag",
    "build_lu_dag",
    "cholesky_critical_path",
]


PROBLEMS: dict[str, type[Problem]] = {
    "qr": QRProblem,
    "cholesky": CholeskyProblem,
    "lu": LUProblem,
}

#: shorthand names accepted by :func:`parse_problem_spec`
PROBLEM_ALIASES: dict[str, str] = {
    "chol": "cholesky",
    "potrf": "cholesky",
    "getrf": "lu",
    "geqrf": "qr",
}


def parse_problem_spec(spec: str) -> tuple[str, dict]:
    """Parse a problem spec into ``(canonical_name, params)``.

    >>> parse_problem_spec("cholesky(t=8)")
    ('cholesky', {'t': 8})
    >>> parse_problem_spec("LU(p=8, q=4)")
    ('lu', {'p': 8, 'q': 4})

    The grammar is :func:`repro.schemes.registry.parse_scheme_spec`'s;
    only the alias table differs.  The name is *not* checked against
    the registry — :func:`get_problem` does that.
    """
    name, params = parse_scheme_spec(spec)
    return PROBLEM_ALIASES.get(name, name), params


def canonical_problem_spec(name: str, params: dict | None = None) -> str:
    """Render ``(name, params)`` back into a normalized spec string.

    Round-trips with :func:`parse_problem_spec` (parameters sorted by
    key), making it a stable cache-key component — the problem-generic
    analogue of :func:`~repro.schemes.registry.canonical_scheme_spec`.
    """
    base, spec_params = parse_problem_spec(name)
    merged = {**spec_params, **(params or {})}
    if not merged:
        return base
    body = ",".join(f"{k}={merged[k]!r}" if isinstance(merged[k], str)
                    else f"{k}={merged[k]}" for k in sorted(merged))
    return f"{base}({body})"


def available_problems() -> list[str]:
    """Canonical family names accepted by :func:`get_problem`, sorted."""
    return sorted(PROBLEMS)


def get_problem(spec, **params) -> Problem:
    """Resolve a problem spec (or an existing Problem) to a Problem.

    Parameters
    ----------
    spec : str or Problem
        A family name or full spec (``"cholesky(t=8)"``); an existing
        :class:`Problem` is returned as-is (``params`` must then be
        empty).
    **params
        Family parameters; they override identically named parameters
        given inline in the spec.
    """
    if isinstance(spec, Problem):
        if params:
            raise TypeError(
                "cannot override parameters of an existing Problem; "
                f"got {sorted(params)}")
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"problem spec must be a string or Problem, got "
            f"{type(spec).__name__}")
    base, spec_params = parse_problem_spec(spec)
    merged = {**spec_params, **params}
    try:
        cls = PROBLEMS[base]
    except KeyError:
        raise ValueError(
            f"unknown problem {base!r}; available: {available_problems()}"
        ) from None
    try:
        return cls(**merged)
    except TypeError as exc:
        raise TypeError(f"bad parameters for problem {base!r}: {exc}") from None
