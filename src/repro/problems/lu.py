"""Tiled LU with incremental pivoting (PLASMA-style), as a Problem.

Four kernels in the ``nb^3/3`` time unit of the QR Table 1:

=========  ==============================================  ======
Kernel     Operation                                       Weight
=========  ==============================================  ======
``GETRF``  partial-pivoting LU of diagonal tile               2
``GESSM``  apply ``L``/pivots of GETRF to row tile            3
``TSTRF``  LU of the stacked ``[U[k][k]; A[i][k]]`` pair      3
``SSSSM``  apply TSTRF transforms to ``[A[k][j]; A[i][j]]``   6
=========  ==============================================  ======

Total weight over a square ``t x t`` grid is exactly ``2 t^3`` — the
classical ``2n^3/3`` flops.  The dependency model mirrors the QR
builder's V=NODEP relaxation (Kurzak et al.): GETRF's ``L`` factor and
each TSTRF's transform block are *write-once* resources separate from
the tile content, so the GESSM row updates proceed concurrently with
the sequential TSTRF chain down the panel — exactly PLASMA's
``dgetrf_incpiv`` DAG.

Rectangular grids (``p >= q``) are supported; the panel loop runs over
``min(p, q)`` diagonal tiles like the QR builder's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dag.build import DataflowTracker
from ..dag.tasks import TaskGraph
from ..kernels.costs import LU_KERNELS, Kernel
from ..schemes.elimination import EliminationList
from .base import Problem

__all__ = ["LUProblem", "build_lu_dag"]


def build_lu_dag(p: int, q: int) -> TaskGraph:
    """Build the incremental-pivoting tiled-LU DAG for ``p x q`` tiles.

    Tasks are emitted in right-looking program order: GETRF on the
    diagonal, the GESSM row broadcast, then for each sub-panel row the
    TSTRF elimination and its SSSSM trailing updates.
    """
    if not (p >= q >= 1):
        raise ValueError(f"need p >= q >= 1, got p={p}, q={q}")
    g = TaskGraph(p, q, name=f"lu(p={p},q={q})", problem="lu")
    flow = DataflowTracker()

    # Resources: R(i, j) is the tile content; L(k) the write-once
    # L/pivot output of GETRF(k); F(i, k) the write-once transform
    # block of TSTRF(i, k).  Splitting L and F from R is what lets
    # GESSM run concurrently with the TSTRF chain that rewrites
    # R(k, k) — the LU analogue of QR's V=NODEP relaxation.
    nr = p * q

    def _r(i, j):
        return i * q + j

    def _l(k):
        return nr + k

    def _f(i, k):
        return nr + q + i * q + k

    def emit(kernel, row, piv, col, j, reads, writes):
        deps: list[int] = []
        for res in reads:
            deps.extend(flow.read(res))
        for res in writes:
            deps.extend(flow.write(res))
        task = g.add(kernel, row, piv, col, j, deps)
        for res in reads:
            flow.note_read(res, task.tid)
        for res in writes:
            flow.note_write(res, task.tid)
        return task

    for k in range(min(p, q)):
        emit(Kernel.GETRF, k, None, k, None,
             reads=(), writes=(_r(k, k), _l(k)))
        for j in range(k + 1, q):
            emit(Kernel.GESSM, k, None, k, j,
                 reads=(_l(k),), writes=(_r(k, j),))
        for i in range(k + 1, p):
            emit(Kernel.TSTRF, i, k, k, None,
                 reads=(), writes=(_r(k, k), _r(i, k), _f(i, k)))
            for j in range(k + 1, q):
                emit(Kernel.SSSSM, i, k, k, j,
                     reads=(_f(i, k),), writes=(_r(k, j), _r(i, j)))
    return g


@dataclass(frozen=True, init=False)
class LUProblem(Problem):
    """``lu(p, q, pivot="incremental")`` — tiled LU on ``p x q`` tiles.

    Only incremental (tile-local) pivoting is implemented; the
    ``pivot`` parameter names the strategy so future variants (e.g.
    partial-pivoting panels) extend the spec rather than the grammar.
    """

    name = "lu"
    kernels = LU_KERNELS

    grid_p: int
    grid_q: int
    pivot: str = "incremental"

    def __init__(self, p: int, q: Optional[int] = None,
                 pivot: str = "incremental"):
        p = int(p)
        q = p if q is None else int(q)
        if not (p >= q >= 1):
            raise ValueError(f"lu needs p >= q >= 1, got p={p}, q={q}")
        if pivot != "incremental":
            raise ValueError(
                f"unknown pivot strategy {pivot!r}; only 'incremental' "
                "is implemented")
        object.__setattr__(self, "grid_p", p)
        object.__setattr__(self, "grid_q", q)
        object.__setattr__(self, "pivot", pivot)

    @property
    def p(self) -> int:
        return self.grid_p

    @property
    def q(self) -> int:
        return self.grid_q

    def params(self) -> dict:
        return {"p": self.grid_p, "q": self.grid_q, "pivot": self.pivot}

    def build(self) -> tuple[Optional[EliminationList], TaskGraph]:
        return None, build_lu_dag(self.grid_p, self.grid_q)
