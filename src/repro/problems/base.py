"""The :class:`Problem` abstraction: a registered DAG-builder family.

Nothing downstream of :mod:`repro.dag.build` is QR-specific — the plan
cache, the vectorized simulator, the runtimes and the schedule
analytics all consume a weighted :class:`~repro.dag.tasks.TaskGraph`.
A :class:`Problem` is the object that *produces* such a graph: one
registered family per factorization (``qr``, ``cholesky``, ``lu``),
each with its own kernel enum and Table-1-style weights, constructed
from a spec string (``"cholesky(t=8)"``) or keyword parameters.

Problems are immutable value objects: two problems with equal
:meth:`spec` strings build identical DAGs, which is what lets the
sha256 plan signature (and therefore the LRU + disk cache tiers)
extend to every family without aliasing across families.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from ..dag.tasks import TaskGraph
from ..kernels.costs import Kernel, KernelFamily
from ..schemes.elimination import EliminationList

__all__ = ["Problem"]


class Problem:
    """One factorization shape: a named, parameterized DAG builder.

    Subclasses are frozen dataclasses; they declare

    * ``name`` — the registered family name (``"qr"``, ``"cholesky"``,
      ``"lu"``);
    * ``kernels`` — the family's kernel tuple (a subset of
      :class:`~repro.kernels.costs.Kernel`);
    * :meth:`params` — the canonical parameter dict (the spec body);
    * :meth:`build` — produce ``(elims_or_None, TaskGraph)``.
    """

    #: registered family name; subclasses override
    name: ClassVar[str] = ""
    #: the kernels this family's DAGs are made of
    kernels: ClassVar[tuple[Kernel, ...]] = ()

    # -- shape ----------------------------------------------------------
    @property
    def p(self) -> int:
        """Tile-grid rows."""
        raise NotImplementedError

    @property
    def q(self) -> int:
        """Tile-grid columns."""
        raise NotImplementedError

    @property
    def family(self) -> Optional[KernelFamily]:
        """QR kernel family, or ``None`` for families without the
        TT/TS distinction (Cholesky, LU)."""
        return None

    # -- identity -------------------------------------------------------
    def params(self) -> dict:
        """Canonical parameter dict — the body of :meth:`spec`."""
        raise NotImplementedError

    def spec(self) -> str:
        """Canonical spec string (``"cholesky(t=8)"``).

        Stable across equivalent constructions — the plan cache keys
        on it, so it must include *every* parameter that affects the
        DAG.
        """
        from . import canonical_problem_spec
        return canonical_problem_spec(self.name, self.params())

    def label(self) -> str:
        """Short human label for report headers (``"qr[TT]"``)."""
        return self.name

    # -- construction ---------------------------------------------------
    def build(self) -> tuple[Optional[EliminationList], TaskGraph]:
        """Build the task DAG (and the elimination list, when the
        family has one — only QR does)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.spec()
