"""Discrete-event simulation of kernel DAGs (S11)."""

from .priorities import PRIORITIES, priority_vector
from .simulate import SimResult, simulate_unbounded, simulate_bounded, zero_out_table
from .trace import (TRACE_FIELDS, Gantt, render_gantt, trace_events,
                    trace_to_csv, trace_to_chrome, trace_to_json, utilization)

__all__ = [
    "SimResult",
    "simulate_unbounded",
    "simulate_bounded",
    "zero_out_table",
    "Gantt",
    "render_gantt",
    "trace_events",
    "trace_to_csv",
    "trace_to_json",
    "trace_to_chrome",
    "TRACE_FIELDS",
    "utilization",
    "PRIORITIES",
    "priority_vector",
]
