"""Discrete-event simulation of tiled-QR task graphs (S11).

This replaces the SimGrid-based simulator the authors built (footnote
1 of the paper): it handles dependencies across tiles exactly and
supports both unbounded processors (critical-path analysis, the
paper's Tables 3-5) and a bounded processor count with list scheduling
(the experimental-performance reproduction, Tables 6-9 / Figures 1, 6).

The hot loops run on the graph's :class:`~repro.dag.index.GraphIndex`
— CSR predecessor/successor arrays and a topological level
decomposition — rather than per-task Python object walks.  The
unbounded pass is one ``np.maximum.reduceat`` per level; the bounded
list scheduler keeps its event loop (it is inherently sequential) but
reads weights, in-degrees and successor segments from flat arrays.
Results are bit-for-bit identical to the original per-task
implementations, which are kept here (``_reference_*``) as the test
oracle.

Every entry point accepts either a :class:`~repro.dag.tasks.TaskGraph`
or a :class:`~repro.planner.Plan` (whose prebuilt index is reused).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..dag.index import GraphIndex
from ..dag.tasks import TaskGraph

__all__ = ["SimResult", "simulate_unbounded", "simulate_bounded",
           "bottom_levels", "zero_out_table"]


def _resolve(graph) -> tuple[TaskGraph, GraphIndex]:
    """Accept a TaskGraph or anything Plan-shaped (``.graph`` + ``.index``)."""
    if isinstance(graph, TaskGraph):
        return graph, graph.index()
    g = getattr(graph, "graph", None)
    idx = getattr(graph, "index", None)
    if isinstance(g, TaskGraph) and idx is not None:
        idx = idx() if callable(idx) else idx
        if isinstance(idx, GraphIndex):
            return g, idx
    raise TypeError(
        f"expected a TaskGraph or a Plan, got {type(graph).__name__}")


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    graph : TaskGraph
    start, finish : ndarray of float
        Per-task times, indexed by task id.
    makespan : float
        ``max(finish)`` — the critical path length when unbounded.
    processors : int or None
        ``None`` for the unbounded-processor run.
    worker : ndarray of int or None
        Worker assignment (bounded runs only).
    """

    graph: TaskGraph
    start: np.ndarray
    finish: np.ndarray
    makespan: float
    processors: int | None = None
    worker: np.ndarray | None = None

    def zero_out_table(self) -> np.ndarray:
        return zero_out_table(self.graph, self.finish)


def simulate_unbounded(graph) -> SimResult:
    """ASAP schedule with unbounded processors.

    Every task starts the instant its last dependency finishes, so the
    makespan equals the critical path length of the DAG.  One
    ``reduceat`` pass per topological level over the graph index.

    Parameters
    ----------
    graph : TaskGraph or Plan
    """
    g, idx = _resolve(graph)
    n = idx.n
    w = idx.weights
    start = np.zeros(n)
    finish = np.zeros(n)
    order, lp = idx.order, idx.level_ptr
    if n:
        src = order[lp[0]:lp[1]]
        finish[src] = w[src]  # level 0: no dependencies, start at 0
    for lvl in range(1, len(lp) - 1):
        seg = order[lp[lvl]:lp[lvl + 1]]
        a, b = idx.fwd_pred_ptr[lp[lvl]], idx.fwd_pred_ptr[lp[lvl + 1]]
        # every task past level 0 has >= 1 predecessor, so no segment
        # of the reduceat is empty
        s = np.maximum.reduceat(finish[idx.fwd_pred_adj[a:b]],
                                idx.fwd_pred_ptr[lp[lvl]:lp[lvl + 1]] - a)
        np.maximum(s, 0.0, out=s)
        start[seg] = s
        finish[seg] = s + w[seg]
    makespan = float(finish.max()) if n else 0.0
    return SimResult(graph=g, start=start, finish=finish, makespan=makespan)


def bottom_levels(graph) -> np.ndarray:
    """Length of the longest weighted path from each task to a sink.

    The classical critical-path priority for list scheduling: a task
    with a larger bottom level is more urgent.
    """
    _, idx = _resolve(graph)
    w = idx.weights
    bl = w.copy()  # sinks: bottom level is the task's own weight
    nodes, sp = idx.rev_nodes, idx.rev_seg_ptr
    for si in range(len(sp) - 1):
        seg = nodes[sp[si]:sp[si + 1]]
        a, b = idx.rev_succ_ptr[sp[si]], idx.rev_succ_ptr[sp[si + 1]]
        m = np.maximum.reduceat(bl[idx.rev_succ_adj[a:b]],
                                idx.rev_succ_ptr[sp[si]:sp[si + 1]] - a)
        np.maximum(m, 0.0, out=m)
        bl[seg] = m + w[seg]
    return bl


def simulate_bounded(
    graph,
    processors: int,
    priority: str | np.ndarray = "critical-path",
) -> SimResult:
    """List scheduling on ``processors`` identical workers.

    Ready tasks are dispatched to idle workers in priority order; this
    models PLASMA's dynamic scheduler with a greedy non-preemptive
    policy.

    Parameters
    ----------
    graph : TaskGraph or Plan
    processors : int
        Number of workers (the paper's 48 cores).
    priority : str or ndarray
        A policy name from :data:`repro.sim.priorities.PRIORITIES`
        (default ``"critical-path"``: largest bottom level first, task
        id as tie-break) or an explicit per-task priority vector
        (lower dispatches first).
    """
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    g, idx = _resolve(graph)
    n = idx.n
    if isinstance(priority, str):
        from .priorities import priority_vector  # local: avoids cycle

        prio = priority_vector(graph, priority)
    else:
        prio = np.asarray(priority, dtype=float)
        if prio.shape != (n,):
            raise ValueError(
                f"priority vector has shape {prio.shape}, expected ({n},)")

    w = idx.weights
    succ_ptr, succ_adj = idx.succ_ptr, idx.succ_adj
    start = np.zeros(n)
    finish = np.zeros(n)
    worker = np.full(n, -1, dtype=np.int64)
    indeg = idx.indegree

    ready: list[tuple[float, int]] = []  # (priority, tid)
    for tid in np.flatnonzero(indeg == 0).tolist():
        heapq.heappush(ready, (prio[tid], tid))

    # (finish_time, tid, worker) completion events; idle worker pool
    running: list[tuple[float, int, int]] = []
    idle = list(range(processors - 1, -1, -1))
    now = 0.0
    done = 0
    while done < n:
        # dispatch as many ready tasks as there are idle workers
        while ready and idle:
            _, tid = heapq.heappop(ready)
            wk = idle.pop()
            start[tid] = now
            finish[tid] = now + w[tid]
            worker[tid] = wk
            heapq.heappush(running, (finish[tid], tid, wk))
        if not running:
            raise RuntimeError("deadlock: no running tasks but work remains")
        # advance to the next completion (batch equal finish times)
        now, tid, wk = heapq.heappop(running)
        completions = [(tid, wk)]
        while running and running[0][0] == now:
            _, tid2, w2 = heapq.heappop(running)
            completions.append((tid2, w2))
        for tid2, w2 in completions:
            done += 1
            idle.append(w2)
            for s in succ_adj[succ_ptr[tid2]:succ_ptr[tid2 + 1]].tolist():
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (prio[s], s))
    makespan = float(finish.max()) if n else 0.0
    return SimResult(graph=g, start=start, finish=finish,
                     makespan=makespan, processors=processors, worker=worker)


def zero_out_table(graph: TaskGraph, finish: np.ndarray) -> np.ndarray:
    """The paper's Table-3-style view: when each sub-diagonal tile is zeroed.

    Entry ``(i, k)`` is the finish time of the TSQRT/TTQRT task that
    zeroes tile ``(i, k)``; zero elsewhere.
    """
    table = np.zeros((graph.p, graph.q))
    for (i, k), tid in graph.zero_task.items():
        table[i, k] = finish[tid]
    return table


# ----------------------------------------------------------------------
# reference implementations — the original per-task-object loops, kept
# as the oracle for the byte-identical tests of the vectorized paths
# ----------------------------------------------------------------------

def _reference_unbounded(graph: TaskGraph) -> SimResult:
    n = len(graph.tasks)
    start = np.zeros(n)
    finish = np.zeros(n)
    for t in graph.tasks:
        s = 0.0
        for d in t.deps:
            f = finish[d]
            if f > s:
                s = f
        start[t.tid] = s
        finish[t.tid] = s + t.weight
    makespan = float(finish.max()) if n else 0.0
    return SimResult(graph=graph, start=start, finish=finish,
                     makespan=makespan)


def _reference_bottom_levels(graph: TaskGraph) -> np.ndarray:
    n = len(graph.tasks)
    bl = np.zeros(n)
    succ = graph.successors()
    for t in reversed(graph.tasks):
        m = 0.0
        for s in succ[t.tid]:
            if bl[s] > m:
                m = bl[s]
        bl[t.tid] = m + t.weight
    return bl


def _reference_bounded(
    graph: TaskGraph,
    processors: int,
    priority: str | np.ndarray = "critical-path",
) -> SimResult:
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    n = len(graph.tasks)
    if isinstance(priority, str):
        from .priorities import priority_vector

        prio = priority_vector(graph, priority)
    else:
        prio = np.asarray(priority, dtype=float)
    start = np.zeros(n)
    finish = np.zeros(n)
    worker = np.full(n, -1, dtype=np.int64)
    indeg = np.zeros(n, dtype=np.int64)
    succ = graph.successors()
    for t in graph.tasks:
        indeg[t.tid] = len(t.deps)
    ready: list[tuple[float, int]] = []
    for t in graph.tasks:
        if indeg[t.tid] == 0:
            heapq.heappush(ready, (prio[t.tid], t.tid))
    running: list[tuple[float, int, int]] = []
    idle = list(range(processors - 1, -1, -1))
    now = 0.0
    done = 0
    while done < n:
        while ready and idle:
            _, tid = heapq.heappop(ready)
            w = idle.pop()
            start[tid] = now
            finish[tid] = now + graph.tasks[tid].weight
            worker[tid] = w
            heapq.heappush(running, (finish[tid], tid, w))
        if not running:
            raise RuntimeError("deadlock: no running tasks but work remains")
        now, tid, w = heapq.heappop(running)
        completions = [(tid, w)]
        while running and running[0][0] == now:
            _, tid2, w2 = heapq.heappop(running)
            completions.append((tid2, w2))
        for tid2, w2 in completions:
            done += 1
            idle.append(w2)
            for s in succ[tid2]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (prio[s], s))
    makespan = float(finish.max()) if n else 0.0
    return SimResult(graph=graph, start=start, finish=finish,
                     makespan=makespan, processors=processors, worker=worker)
