"""Execution traces and ASCII Gantt rendering (S11).

Small utilities to inspect a :class:`~repro.sim.simulate.SimResult`:
per-worker timelines and a terminal-friendly Gantt chart, which the
``examples/scheme_explorer.py`` script uses to visualize how the
elimination trees differ.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass

from .simulate import SimResult

__all__ = ["Gantt", "render_gantt", "trace_events", "trace_to_csv",
           "trace_to_json", "trace_to_chrome", "utilization",
           "TRACE_FIELDS"]

#: stable field order of :func:`trace_events` records
TRACE_FIELDS = ("task", "kernel", "row", "piv", "col", "j",
                "start", "finish", "worker")


@dataclass
class Gantt:
    """Per-worker list of ``(start, finish, label)`` segments."""

    lanes: list[list[tuple[float, float, str]]]
    makespan: float


def build_gantt(result: SimResult) -> Gantt:
    """Group a bounded simulation's tasks by worker."""
    if result.worker is None:
        raise ValueError("Gantt requires a bounded simulation (with workers)")
    nw = int(result.worker.max()) + 1 if len(result.worker) else 0
    lanes: list[list[tuple[float, float, str]]] = [[] for _ in range(nw)]
    for t in result.graph.tasks:
        w = int(result.worker[t.tid])
        lanes[w].append((float(result.start[t.tid]), float(result.finish[t.tid]), str(t)))
    for lane in lanes:
        lane.sort()
    return Gantt(lanes=lanes, makespan=result.makespan)


def trace_events(result: SimResult) -> list[dict]:
    """Flat event records of a simulation, one per task.

    Fields: ``task``, ``kernel``, ``row``, ``piv``, ``col``, ``j``,
    ``start``, ``finish``, ``worker`` (-1 when unbounded).  The format
    is stable and feeds :func:`trace_to_csv` / :func:`trace_to_json`,
    e.g. for external trace viewers.
    """
    events = []
    for t in result.graph.tasks:
        events.append({
            "task": str(t),
            "kernel": t.kernel.value,
            "row": t.row,
            "piv": t.piv,
            "col": t.col,
            "j": t.j,
            "start": float(result.start[t.tid]),
            "finish": float(result.finish[t.tid]),
            "worker": int(result.worker[t.tid]) if result.worker is not None
                      else -1,
        })
    return events


def trace_to_csv(result: SimResult) -> str:
    """Render the event trace as CSV text.

    The header always carries the full :data:`TRACE_FIELDS` schema,
    even for an empty simulation, so downstream parsers see a
    consistent layout.
    """
    events = trace_events(result)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(TRACE_FIELDS))
    writer.writeheader()
    writer.writerows(events)
    return buf.getvalue()


def trace_to_json(result: SimResult) -> str:
    """Render the event trace as a JSON array."""
    return json.dumps(trace_events(result), indent=1)


def trace_to_chrome(result: SimResult, time_scale: float = 1.0) -> str:
    """Render the simulated schedule as Chrome trace-event JSON.

    The output loads in Perfetto / ``chrome://tracing``; see
    :mod:`repro.obs.chrome_trace` for the format and ``time_scale``
    semantics (model units -> microseconds, default 1:1).
    """
    from ..obs.chrome_trace import to_chrome_json  # local: keep sim light

    return to_chrome_json(sim=result, sim_time_scale=time_scale)


def utilization(result: SimResult) -> float:
    """Fraction of worker-time spent computing (bounded runs).

    ``total work / (processors * makespan)`` — 1.0 means a perfectly
    packed schedule; the gap to 1.0 is critical-path idling.
    """
    if result.processors is None:
        raise ValueError("utilization requires a bounded simulation")
    if result.makespan == 0:
        return 1.0
    return result.graph.total_weight() / (result.processors * result.makespan)


def render_gantt(result: SimResult, width: int = 100) -> str:
    """Render a bounded simulation as an ASCII Gantt chart.

    Each worker is one text row; kernels are drawn with one character
    per class (``G`` GEQRT, ``U`` UNMQR, ``S`` TSQRT, ``s`` TSMQR,
    ``T`` TTQRT, ``t`` TTMQR, ``.`` idle).
    """
    gantt = build_gantt(result)
    if gantt.makespan <= 0:
        return "(empty schedule)"
    glyph = {"GEQRT": "G", "UNMQR": "U", "TSQRT": "S", "TSMQR": "s",
             "TTQRT": "T", "TTMQR": "t"}
    scale = width / gantt.makespan
    rows = []
    for w, lane in enumerate(gantt.lanes):
        row = ["."] * width
        for s, f, label in lane:
            a = int(s * scale)
            b = max(a + 1, int(f * scale))
            ch = glyph.get(label.split("(")[0], "?")
            for x in range(a, min(b, width)):
                row[x] = ch
        rows.append(f"P{w:<3d} |{''.join(row)}|")
    header = (f"{result.graph.name}: makespan {gantt.makespan:g} on "
              f"{result.processors} processors")
    return "\n".join([header] + rows)
