"""Scheduling priority policies for the bounded-P list scheduler (S11).

The paper's experiments rely on PLASMA's dynamic scheduler; exactly
which ready task a free core grabs is a degree of freedom the paper
does not explore.  This module collects the classical policies so the
ablation benchmark (``benchmarks/bench_ablation_priority.py``) can
quantify how much the elimination *tree* matters relative to the
dispatch *order* — the answer: the tree dominates, dispatch order
perturbs makespans by only a few percent, confirming the paper's
framing of critical path as the right metric.

Every policy maps a :class:`~repro.dag.tasks.TaskGraph` to an array of
priorities (lower = dispatched first).
"""

from __future__ import annotations

import numpy as np

from ..dag.tasks import TaskGraph
from ..kernels.costs import Kernel
from .simulate import _resolve, bottom_levels

__all__ = ["PRIORITIES", "priority_vector"]


def _graph_of(graph) -> TaskGraph:
    """Accept a TaskGraph or a Plan, return the TaskGraph."""
    g, _ = _resolve(graph)
    return g


def critical_path_priority(graph) -> np.ndarray:
    """Largest bottom level first — the standard CP heuristic."""
    return -bottom_levels(graph)


def fifo_priority(graph) -> np.ndarray:
    """Emission (program) order."""
    return np.arange(len(_graph_of(graph).tasks), dtype=float)


def panel_first_priority(graph) -> np.ndarray:
    """Factor kernels before update kernels, then program order.

    Mirrors PLASMA's practice of prioritizing the panel to expose new
    parallelism early.
    """
    graph = _graph_of(graph)
    n = len(graph.tasks)
    prio = np.arange(n, dtype=float)
    panel = {Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT}
    for t in graph.tasks:
        if t.kernel in panel:
            prio[t.tid] -= n  # strictly ahead of every update kernel
    return prio


def column_major_priority(graph) -> np.ndarray:
    """Leftmost panel column first (greedy pipeline draining)."""
    graph = _graph_of(graph)
    n = len(graph.tasks)
    return np.array([t.col * n + t.tid for t in graph.tasks], dtype=float)


def heaviest_first_priority(graph) -> np.ndarray:
    """Longest processing time (LPT) first, tie-broken by program order."""
    graph = _graph_of(graph)
    n = len(graph.tasks)
    return np.array([-t.weight * n + t.tid for t in graph.tasks], dtype=float)


def random_priority(graph, seed: int = 0) -> np.ndarray:
    """Uniformly random dispatch order (the ablation's control arm)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(len(_graph_of(graph).tasks)).astype(float)


PRIORITIES = {
    "critical-path": critical_path_priority,
    "fifo": fifo_priority,
    "panel-first": panel_first_priority,
    "column-major": column_major_priority,
    "heaviest-first": heaviest_first_priority,
    "random": random_priority,
}


def priority_vector(graph, name: str, **kwargs) -> np.ndarray:
    """Resolve a policy by name and compute its priority vector."""
    try:
        fn = PRIORITIES[name]
    except KeyError:
        raise ValueError(
            f"unknown priority {name!r}; available: {sorted(PRIORITIES)}"
        ) from None
    return fn(graph, **kwargs)
