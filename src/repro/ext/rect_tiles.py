"""Rectangular-tile cost model (S18, paper §5 future work).

"First, using rectangular tiles instead of square tiles could lead to
efficient algorithms, with more locality and still the same potential
for parallelism."

The paper's Table-1 weights assume square ``nb x nb`` tiles.  This
module generalizes them to ``mb x nb`` tiles (aspect ratio
``rho = mb / nb``), from the standard Householder flop counts:

* ``GEQRT`` on an ``mb x nb`` tile: ``2 nb^2 (mb - nb/3)`` flops,
* ``UNMQR`` update of an ``mb x nb`` tile: ``4 nb^2 (mb - nb/2)``
  ... and the stacked kernels analogously (triangle-on-square spans
  ``mb + nb`` rows, triangle-on-triangle ``2 nb``).

Expressed in the paper's unit (``nb^3/3`` flops) the weights become
functions of ``rho`` that reduce exactly to Table 1 at ``rho = 1``:

=========  =====================  =========
kernel     weight(rho)            rho = 1
=========  =====================  =========
``GEQRT``  ``6 rho - 2``             4
``UNMQR``  ``12 rho - 6``            6
``TSQRT``  ``6 rho``                 6
``TSMQR``  ``12 rho``               12
``TTQRT``  ``2``                     2
``TTMQR``  ``6``                     6
=========  =====================  =========

(TT kernels operate on the ``nb x nb`` triangles regardless of ``mb``,
so only the GEQRT/UNMQR/TS costs stretch with the aspect ratio, while
the *number* of tile rows shrinks as ``p = m / (rho nb)`` — the
locality-vs-parallelism dial the paper anticipates.)  The ablation
benchmark sweeps ``rho`` at fixed total matrix size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..kernels.costs import QR_KERNELS, Kernel

__all__ = ["RectTileModel", "rect_weights"]


@dataclass(frozen=True)
class RectTileModel:
    """Cost model for ``mb x nb`` tiles with ``rho = mb / nb >= 1``."""

    rho: float = 1.0

    def __post_init__(self):
        if self.rho < 1.0:
            raise ValueError(
                f"aspect ratio must be >= 1 (tall tiles), got {self.rho}")

    def weight(self, kernel: Kernel) -> float:
        r = self.rho
        if kernel is Kernel.GEQRT:
            return 6.0 * r - 2.0
        if kernel is Kernel.UNMQR:
            return 12.0 * r - 6.0
        if kernel is Kernel.TSQRT:
            return 6.0 * r
        if kernel is Kernel.TSMQR:
            return 12.0 * r
        if kernel is Kernel.TTQRT:
            return 2.0
        if kernel is Kernel.TTMQR:
            return 6.0
        raise ValueError(
            f"rectangular-tile model covers the QR kernels only, got {kernel}")

    def weights(self) -> dict[Kernel, float]:
        return {k: self.weight(k) for k in QR_KERNELS}

    def grid(self, m: int, n: int, nb: int) -> tuple[int, int]:
        """Tile-grid shape for an ``m x n`` matrix with these tiles."""
        mb = int(round(self.rho * nb))
        return -(-m // mb), -(-n // nb)

    def rows_for(self, p_square: int) -> int:
        """Tile rows replacing ``p_square`` square-tile rows."""
        return max(1, math.ceil(p_square / self.rho))


def rect_weights(rho: float) -> dict[Kernel, float]:
    """Convenience: the ``mb = rho * nb`` kernel weights."""
    return RectTileModel(rho).weights()
