"""Heterogeneous-speed list scheduling (S18, paper §5 future work).

"The design of robust algorithms, capable of achieving efficient
performance despite variations in processor speeds, or even resource
failures" — this module provides the simulation instrument: a bounded
list scheduler where each worker has its own speed (a task of weight
``w`` takes ``w / speed`` on that worker).  A degenerate speed of 0
models a failed core.  The ablation benchmark
``benchmarks/bench_ablation_hetero.py`` uses it to compare how
gracefully the elimination trees tolerate slow cores.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dag.tasks import TaskGraph
from ..sim.simulate import SimResult, bottom_levels

__all__ = ["simulate_heterogeneous"]


def simulate_heterogeneous(
    graph: TaskGraph,
    speeds: list[float],
    priority: str = "critical-path",
) -> SimResult:
    """List scheduling on workers with per-worker speeds.

    Ready tasks are dispatched in priority order; among idle workers the
    fastest is chosen (a standard heterogeneous-list heuristic).

    Parameters
    ----------
    speeds : list of float
        One positive speed per worker (1.0 = nominal; 0 disallowed —
        drop the worker from the list to model a failure).
    """
    if not speeds:
        raise ValueError("need at least one worker")
    if any(s <= 0 for s in speeds):
        raise ValueError("speeds must be positive; drop failed workers instead")
    n = len(graph.tasks)
    if priority == "critical-path":
        prio = -bottom_levels(graph)
    elif priority == "fifo":
        prio = np.arange(n, dtype=float)
    else:
        raise ValueError(f"unknown priority {priority!r}")

    start = np.zeros(n)
    finish = np.zeros(n)
    worker = np.full(n, -1, dtype=np.int64)
    indeg = np.array([len(t.deps) for t in graph.tasks], dtype=np.int64)
    succ = graph.successors()

    ready: list[tuple[float, int]] = [
        (prio[t.tid], t.tid) for t in graph.tasks if indeg[t.tid] == 0
    ]
    heapq.heapify(ready)
    # idle workers sorted fastest-first: heap of (-speed, worker)
    idle = [(-s, w) for w, s in enumerate(speeds)]
    heapq.heapify(idle)
    running: list[tuple[float, int, int]] = []
    now = 0.0
    done = 0
    while done < n:
        while ready and idle:
            _, tid = heapq.heappop(ready)
            negs, w = heapq.heappop(idle)
            start[tid] = now
            finish[tid] = now + graph.tasks[tid].weight / (-negs)
            worker[tid] = w
            heapq.heappush(running, (finish[tid], tid, w))
        if not running:
            raise RuntimeError("deadlock: no running tasks but work remains")
        now, tid, w = heapq.heappop(running)
        batch = [(tid, w)]
        while running and running[0][0] == now:
            _, t2, w2 = heapq.heappop(running)
            batch.append((t2, w2))
        for t2, w2 in batch:
            done += 1
            heapq.heappush(idle, (-speeds[w2], w2))
            for s in succ[t2]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (prio[s], s))
    return SimResult(graph=graph, start=start, finish=finish,
                     makespan=float(finish.max()) if n else 0.0,
                     processors=len(speeds), worker=worker)
