"""Communication-aware cost model (S18, paper §5 future work).

"Refining the model to account for communications" — the paper's
Table-1 weights count flops only; TS kernels move fewer tiles per unit
of work than TT kernels (Section 2.1: "TS kernels provide more data
locality").  This module charges each kernel an additional
:math:`\\alpha \\cdot (\\text{tiles touched})` time units, where one
unit is still ``nb^3/3`` flops, so ``alpha`` expresses how many
flop-units one tile transfer costs:

=========  ============== =========================
Kernel      tiles touched  comment
=========  ============== =========================
``GEQRT``   1              the panel tile
``UNMQR``   2              V/T + target tile
``TSQRT``   2              triangle + square
``TSMQR``   3              V/T + two targets
``TTQRT``   2              two triangles
``TTMQR``   3              V/T + two targets
=========  ============== =========================

Per elimination with ``u = q - k`` trailing updates the totals are
``TS: 2 + 3u`` extra vs ``TT: (1 + 2u) + 2 + 3u`` counting the extra
GEQRT/UNMQR of the eliminated row — TT moves more data, so a growing
``alpha`` progressively erodes its critical-path advantage.  The
ablation benchmark ``benchmarks/bench_ablation_comm.py`` sweeps
``alpha`` to locate the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.costs import KERNEL_WEIGHTS, Kernel

__all__ = ["CommunicationModel", "comm_adjusted_weights"]

#: tiles read or written by one invocation of each kernel; the
#: Cholesky/LU rows follow the same pattern as QR — panel kernels
#: touch 1 tile, one-source updates 2, two-source updates 3
TILES_TOUCHED: dict[Kernel, int] = {
    Kernel.GEQRT: 1,
    Kernel.UNMQR: 2,
    Kernel.TSQRT: 2,
    Kernel.TSMQR: 3,
    Kernel.TTQRT: 2,
    Kernel.TTMQR: 3,
    Kernel.POTRF: 1,
    Kernel.TRSM: 2,
    Kernel.SYRK: 2,
    Kernel.GEMM: 3,
    Kernel.GETRF: 1,
    Kernel.GESSM: 2,
    Kernel.TSTRF: 2,
    Kernel.SSSSM: 3,
}


@dataclass(frozen=True)
class CommunicationModel:
    """Charge ``alpha`` time units per tile touched, on top of Table 1.

    ``alpha = 0`` recovers the paper's pure-flop model.
    """

    alpha: float = 0.0

    def weight(self, kernel: Kernel) -> float:
        return KERNEL_WEIGHTS[kernel] + self.alpha * TILES_TOUCHED[kernel]

    def weights(self) -> dict[Kernel, float]:
        return {k: self.weight(k) for k in Kernel}


def comm_adjusted_weights(alpha: float) -> dict[Kernel, float]:
    """Convenience: Table-1 weights plus the ``alpha`` surcharge."""
    return CommunicationModel(alpha).weights()
