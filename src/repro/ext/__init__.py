"""Extensions beyond the paper's core study (S18).

Section 5 of the paper lists three future-work directions; two are
prototyped here as model extensions:

* :mod:`repro.ext.hetero` — robustness to *variations in processor
  speeds* (heterogeneous workers, slowdown injection);
* :mod:`repro.ext.comm` — *refining the model to account for
  communications* (per-kernel data-movement surcharge, which shifts
  the TS/TT trade-off).
"""

from .comm import CommunicationModel, comm_adjusted_weights
from .distributed import (DistributedLayout, communication_volume,
                          distributed_graph, simulate_distributed)
from .failures import Failure, simulate_with_failures
from .hetero import simulate_heterogeneous
from .rect_tiles import RectTileModel, rect_weights

__all__ = [
    "simulate_heterogeneous",
    "CommunicationModel",
    "comm_adjusted_weights",
    "DistributedLayout",
    "communication_volume",
    "distributed_graph",
    "simulate_distributed",
    "Failure",
    "simulate_with_failures",
    "RectTileModel",
    "rect_weights",
]
