"""Worker-failure model (S18, paper §5 future work).

"...or even resource failures, is a challenging but crucial task to
fully benefit from future platforms with a huge number of cores."

This module simulates fail-stop worker losses under list scheduling
with task re-execution: when a worker dies, its in-flight task is lost
and immediately re-queued (tiled QR tasks are idempotent at the model
level — inputs are consumed only at successful completion, matching a
checkpoint-on-write runtime).  The recovery benchmark measures how much
makespan each elimination tree loses per failure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..dag.tasks import TaskGraph
from ..sim.simulate import SimResult, bottom_levels

__all__ = ["Failure", "simulate_with_failures"]


@dataclass(frozen=True)
class Failure:
    """A fail-stop event: worker ``worker`` dies at time ``time``."""

    worker: int
    time: float


def simulate_with_failures(
    graph: TaskGraph,
    processors: int,
    failures: list[Failure],
) -> SimResult:
    """List scheduling with fail-stop workers and task re-execution.

    Failures are detected immediately: the victim's in-flight task is
    re-queued at the failure instant and the worker never receives work
    again.

    Parameters
    ----------
    processors : int
        Initial worker count; at least one worker must survive.
    failures : list of Failure
        Fail-stop events (a worker listed twice dies at the earliest
        time).

    Returns
    -------
    SimResult
        ``start``/``finish`` reflect each task's *successful* run;
        ``worker`` its surviving executor.
    """
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    death: dict[int, float] = {}
    for f in failures:
        if not (0 <= f.worker < processors):
            raise ValueError(f"failure references worker {f.worker}")
        death[f.worker] = min(death.get(f.worker, np.inf), f.time)
    if len(death) >= processors:
        raise ValueError("at least one worker must survive")

    n = len(graph.tasks)
    prio = -bottom_levels(graph)
    start = np.zeros(n)
    finish = np.zeros(n)
    worker = np.full(n, -1, dtype=np.int64)
    indeg = np.array([len(t.deps) for t in graph.tasks], dtype=np.int64)
    succ = graph.successors()

    ready = [(prio[t.tid], t.tid) for t in graph.tasks if indeg[t.tid] == 0]
    heapq.heapify(ready)
    alive = set(range(processors)) - {w for w, t in death.items() if t <= 0}
    idle = sorted(alive)
    current: dict[int, int] = {}  # worker -> in-flight task

    # unified event heap: (time, kind, payload); kind 0 = failure
    # (processed before completions at equal times), kind 1 = completion
    events: list[tuple[float, int, int]] = []
    for w, t in death.items():
        if t > 0:
            heapq.heappush(events, (t, 0, w))

    now = 0.0
    done = 0
    while done < n:
        while ready and idle:
            _, tid = heapq.heappop(ready)
            w = idle.pop()
            current[w] = tid
            start[tid] = now
            heapq.heappush(events, (now + graph.tasks[tid].weight, 1, w))
        if not events:
            raise RuntimeError("deadlock: no events pending, work remains")
        now, kind, w = heapq.heappop(events)
        if kind == 0:  # failure
            if w in alive:
                alive.discard(w)
                if w in idle:
                    idle.remove(w)
                tid = current.pop(w, None)
                if tid is not None:
                    heapq.heappush(ready, (prio[tid], tid))
            continue
        # completion event — ignore if the worker already died (its
        # task was re-queued by the failure handler)
        if w not in alive or w not in current:
            continue
        tid = current.pop(w)
        finish[tid] = now
        worker[tid] = w
        idle.append(w)
        done += 1
        for s in succ[tid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, (prio[s], s))
    return SimResult(graph=graph, start=start, finish=finish,
                     makespan=float(finish.max()) if n else 0.0,
                     processors=processors, worker=worker)
