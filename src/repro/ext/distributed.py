"""Distributed-memory model (S18, paper §5 future work).

"Extending [the model] to fully distributed architectures would lay the
ground to the design of MPI implementations of the new algorithms."
This module provides that model layer: tile rows are distributed over
``nodes`` memories (block or cyclic layout), every stacked kernel whose
two rows live on different nodes pays a per-tile transfer surcharge,
and the elimination trees can then be compared by *communication
volume* as well as by critical path.

The qualitative outcome (see ``benchmarks/bench_ablation_distributed``):
with a block layout, FlatTree localizes all but ``O(q)`` eliminations
inside nodes, while BinaryTree/Greedy cross node boundaries on every
merge level — the same locality-vs-parallelism trade-off that motivates
the hierarchical trees of Demmel et al. [8] and Hadri et al. [11].
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..dag.tasks import TaskGraph
from ..kernels.costs import Kernel
from ..schemes.elimination import EliminationList
from ..sim.simulate import SimResult, bottom_levels

__all__ = [
    "DistributedLayout",
    "communication_volume",
    "distributed_graph",
    "simulate_distributed",
]


@dataclass(frozen=True)
class DistributedLayout:
    """Row-block distribution of a ``p x q`` tile grid.

    Attributes
    ----------
    p : int
        Number of tile rows.
    nodes : int
        Number of distributed memories.
    kind : {"block", "cyclic"}
        ``block`` gives node ``n`` rows ``[n*ceil(p/nodes), ...)``;
        ``cyclic`` deals rows round-robin (``i % nodes``).
    """

    p: int
    nodes: int
    kind: str = "block"

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.kind not in ("block", "cyclic"):
            raise ValueError(f"unknown layout kind {self.kind!r}")

    def owner(self, row: int) -> int:
        """Node owning tile row ``row``."""
        if not (0 <= row < self.p):
            raise ValueError(f"row {row} outside 0..{self.p - 1}")
        if self.kind == "cyclic":
            return row % self.nodes
        rows_per_node = -(-self.p // self.nodes)
        return row // rows_per_node

    def crosses(self, i: int, piv: int) -> bool:
        """True if rows ``i`` and ``piv`` live on different nodes."""
        return self.owner(i) != self.owner(piv)


def communication_volume(
    elims: EliminationList, layout: DistributedLayout
) -> dict[str, int]:
    """Inter-node communication of an elimination tree under ``layout``.

    Counts one message per cross-node elimination in the panel (the
    triangle exchanged by TTQRT/TSQRT) plus one per trailing update
    column (the row tiles combined by TTMQR/TSMQR), the dominant
    volume of an MPI port.

    Returns
    -------
    dict with ``messages`` (count), ``tiles`` (tile transfers) and
    ``cross_eliminations``.
    """
    messages = tiles = cross = 0
    for e in elims:
        if layout.crosses(e.row, e.piv):
            cross += 1
            trailing = elims.q - e.col - 1
            messages += 1 + trailing
            tiles += 1 + trailing
    return {"messages": messages, "tiles": tiles, "cross_eliminations": cross}


def simulate_distributed(
    graph: TaskGraph,
    layout: DistributedLayout,
    workers_per_node: int,
    tile_comm_cost: float = 0.0,
) -> SimResult:
    """Owner-computes list scheduling over node-local worker pools.

    The standard distributed-memory execution model for tiled QR: each
    task runs on the node owning the row it *writes* (the eliminated
    row for stacked kernels, the factored/updated row otherwise), on
    one of that node's ``workers_per_node`` workers; cross-node stacked
    kernels additionally pay ``tile_comm_cost`` for fetching the remote
    tile.  This is the machine the paper's §5 MPI outlook describes,
    so elimination trees can be ranked under it directly.
    """
    if workers_per_node < 1:
        raise ValueError(
            f"need at least one worker per node, got {workers_per_node}")
    n = len(graph.tasks)
    prio = -bottom_levels(graph)
    stacked = (Kernel.TSQRT, Kernel.TTQRT, Kernel.TSMQR, Kernel.TTMQR)

    def duration(t) -> float:
        w = t.weight
        if t.kernel in stacked and layout.crosses(t.row, t.piv):
            w += tile_comm_cost
        return w

    home = [layout.owner(t.row) for t in graph.tasks]
    start = np.zeros(n)
    finish = np.zeros(n)
    worker = np.full(n, -1, dtype=np.int64)
    indeg = np.array([len(t.deps) for t in graph.tasks], dtype=np.int64)
    succ = graph.successors()

    # per-node ready queues and idle pools
    ready: list[list[tuple[float, int]]] = [[] for _ in range(layout.nodes)]
    for t in graph.tasks:
        if indeg[t.tid] == 0:
            heapq.heappush(ready[home[t.tid]], (prio[t.tid], t.tid))
    idle = [list(range(workers_per_node)) for _ in range(layout.nodes)]
    running: list[tuple[float, int, int, int]] = []  # (fin, tid, node, w)
    now = 0.0
    done = 0
    while done < n:
        for node in range(layout.nodes):
            while ready[node] and idle[node]:
                _, tid = heapq.heappop(ready[node])
                w = idle[node].pop()
                start[tid] = now
                finish[tid] = now + duration(graph.tasks[tid])
                worker[tid] = node * workers_per_node + w
                heapq.heappush(running, (finish[tid], tid, node, w))
        if not running:
            raise RuntimeError("deadlock: nothing running, work remains")
        now, tid, node, w = heapq.heappop(running)
        batch = [(tid, node, w)]
        while running and running[0][0] == now:
            _, t2, n2, w2 = heapq.heappop(running)
            batch.append((t2, n2, w2))
        for t2, n2, w2 in batch:
            done += 1
            idle[n2].append(w2)
            for s in succ[t2]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready[home[s]], (prio[s], s))
    return SimResult(graph=graph, start=start, finish=finish,
                     makespan=float(finish.max()) if n else 0.0,
                     processors=layout.nodes * workers_per_node,
                     worker=worker)


def distributed_graph(
    graph: TaskGraph,
    layout: DistributedLayout,
    tile_comm_cost: float,
) -> TaskGraph:
    """Copy ``graph`` charging ``tile_comm_cost`` to cross-node kernels.

    Every stacked kernel (TSQRT/TTQRT/TSMQR/TTMQR) whose two rows live
    on different nodes pays one tile transfer on top of its Table-1
    weight; node-local kernels are unchanged.  The result feeds the
    usual simulators, giving distributed-aware critical paths.
    """
    out = TaskGraph(graph.p, graph.q,
                    name=f"{graph.name}@{layout.nodes}nodes")
    stacked = (Kernel.TSQRT, Kernel.TTQRT, Kernel.TSMQR, Kernel.TTMQR)
    for t in graph.tasks:
        w = t.weight
        if t.kernel in stacked and layout.crosses(t.row, t.piv):
            w += tile_comm_cost
        out.add(t.kernel, t.row, t.piv, t.col, t.j, list(t.deps), weight=w)
    return out
