"""Kernel task DAG construction (S10)."""

from .build import build_dag
from .dot import to_dot
from .index import GraphIndex, build_index
from .tasks import Task, TaskGraph

__all__ = ["Task", "TaskGraph", "build_dag", "to_dot", "GraphIndex",
           "build_index"]
