"""Kernel task DAG construction (S10)."""

from .build import build_dag
from .dot import to_dot
from .tasks import Task, TaskGraph

__all__ = ["Task", "TaskGraph", "build_dag", "to_dot"]
