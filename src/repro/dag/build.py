"""Dataflow DAG construction from an elimination list (S10).

Tasks are emitted in elimination-list program order and dependencies
are inferred superscalar-style from read/write sets, exactly as
PLASMA's dynamic scheduler does.  Each panel tile ``(i, k)`` is split
into two logical resources:

* ``R(i, k)`` — the factor content of the tile (read-write by GEQRT,
  TSQRT, TTQRT, and by the update kernels on off-panel tiles);
* ``V(i, k, kind)`` — the write-once Householder vectors produced by a
  factor kernel and read by its update kernels.

Splitting ``V`` from ``R`` reproduces the V=NODEP dependency relaxation
of Kurzak et al. [12] that the paper applies: without it, ``TTQRT``
(which rewrites the tile) would serialize behind the ``UNMQR`` reads of
the same tile and the paper's Table 3 time-steps would not be
attainable.  It is physically sound because GEQRT's vectors live
strictly below the tile diagonal while TTQRT's live on/above it
(see :mod:`repro.kernels.ttqrt`).

The resulting dependency set is exactly the one listed in Section 2.1
for both kernel families, plus the cross-elimination serializations
implied by shared rows.
"""

from __future__ import annotations

from ..kernels.costs import Kernel, KernelFamily
from ..schemes.elimination import EliminationList
from .tasks import TaskGraph

__all__ = ["build_dag", "DataflowTracker"]


class DataflowTracker:
    """Superscalar dependency tracking over named resources.

    ``reads`` returns the dependency on the last writer; ``writes``
    additionally picks up WAR dependencies on all readers since that
    writer, then installs the new writer.
    """

    def __init__(self) -> None:
        self._writer: dict[object, int] = {}
        self._readers: dict[object, list[int]] = {}

    def read(self, res: object) -> list[int]:
        deps = []
        w = self._writer.get(res)
        if w is not None:
            deps.append(w)
        return deps

    def note_read(self, res: object, tid: int) -> None:
        self._readers.setdefault(res, []).append(tid)

    def write(self, res: object) -> list[int]:
        deps = []
        w = self._writer.get(res)
        if w is not None:
            deps.append(w)
        deps.extend(self._readers.get(res, ()))
        return deps

    def note_write(self, res: object, tid: int) -> None:
        self._writer[res] = tid
        self._readers[res] = []


def build_dag(
    elims: EliminationList,
    family: KernelFamily | str = KernelFamily.TT,
) -> TaskGraph:
    """Build the kernel DAG of an elimination list.

    Parameters
    ----------
    elims : EliminationList
        The algorithm (validated or not; invalid lists produce broken
        DAGs, so validate first when in doubt).
    family : KernelFamily
        ``TT`` — every active row is triangularized (GEQRT) each
        column and all eliminations use TTQRT/TTMQR.
        ``TS`` — only pivot rows (and the diagonal) are triangularized;
        square rows are eliminated with TSQRT/TSMQR, and rows that are
        already triangular (domain heads being merged, e.g. in
        PlasmaTree) with TTQRT/TTMQR.

    Returns
    -------
    TaskGraph
    """
    family = KernelFamily(family)
    p, q, qq = elims.p, elims.q, min(elims.p, elims.q)
    g = TaskGraph(p, q, name=f"{elims.name}[{family}]")
    flow = DataflowTracker()

    by_col: list[list] = [[] for _ in range(qq)]
    for e in elims.eliminations:
        by_col[e.col].append(e)

    # Resources are integer-encoded for speed (this function builds
    # millions of tasks on large grids): R(i, j) -> i*q + j, and the
    # write-once V slots of tile (i, k) live at an offset per kind.
    nr = p * q

    def _r(i, k):
        return i * q + k

    def _v(i, k, kind):
        # kind: 0 = GEQRT vectors, 1 = TT vectors, 2 = TS vectors
        return nr + (i * q + k) * 3 + kind

    def emit(kernel, row, piv, col, j, reads, writes):
        deps: list[int] = []
        for res in reads:
            deps.extend(flow.read(res))
        for res in writes:
            deps.extend(flow.write(res))
        t = g.add(kernel, row, piv, col, j, deps)
        for res in reads:
            flow.note_read(res, t.tid)
        for res in writes:
            flow.note_write(res, t.tid)
        return t

    def emit_geqrt(i, k):
        emit(Kernel.GEQRT, i, None, k, None,
             reads=(), writes=(_r(i, k), _v(i, k, 0)))
        vge = (_v(i, k, 0),)
        for j in range(k + 1, q):
            emit(Kernel.UNMQR, i, None, k, j,
                 reads=vge, writes=(_r(i, j),))

    for k in range(qq):
        if family is KernelFamily.TT:
            # every row participating in this column is triangularized;
            # for a full matrix this is exactly rows k..p-1, but deriving
            # the set from the list also supports banded matrices (used
            # by the optimality lower-bound search of Section 3.2).
            tri = {k}
            for e in by_col[k]:
                tri.add(e.row)
                tri.add(e.piv)
            tri_rows = sorted(tri)
        else:
            tri = {e.piv for e in by_col[k]}
            tri.add(k)  # the diagonal tile must end up triangular
            tri_rows = sorted(tri)
        for i in tri_rows:
            emit_geqrt(i, k)
        tri_set = set(tri_rows)
        for e in by_col[k]:
            if e.row in tri_set:
                zero_kernel, upd_kernel, vkind = Kernel.TTQRT, Kernel.TTMQR, 1
            else:
                zero_kernel, upd_kernel, vkind = Kernel.TSQRT, Kernel.TSMQR, 2
            vres = _v(e.row, k, vkind)
            emit(zero_kernel, e.row, e.piv, k, None,
                 reads=(), writes=(_r(e.piv, k), _r(e.row, k), vres))
            vread = (vres,)
            for j in range(k + 1, q):
                emit(upd_kernel, e.row, e.piv, k, j,
                     reads=vread, writes=(_r(e.piv, j), _r(e.row, j)))
    return g
