"""Graphviz DOT export of kernel DAGs (S10).

Renders a :class:`~repro.dag.tasks.TaskGraph` as DOT text for external
visualization (``dot -Tsvg``), with one color per kernel class and
panel columns grouped into clusters — the picture PLASMA papers draw of
their dataflow graphs.
"""

from __future__ import annotations

from ..kernels.costs import Kernel
from .tasks import TaskGraph

__all__ = ["to_dot"]

_COLORS = {
    Kernel.GEQRT: "#1b9e77",
    Kernel.UNMQR: "#66c2a5",
    Kernel.TSQRT: "#d95f02",
    Kernel.TSMQR: "#fc8d62",
    Kernel.TTQRT: "#7570b3",
    Kernel.TTMQR: "#8da0cb",
}


def to_dot(graph: TaskGraph, cluster_columns: bool = True) -> str:
    """Serialize ``graph`` as Graphviz DOT text.

    Parameters
    ----------
    cluster_columns : bool
        Group tasks of each panel column into a ``subgraph cluster``.
    """
    lines = [
        f'digraph "{graph.name or "tiled-qr"}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    by_col: dict[int, list] = {}
    for t in graph.tasks:
        by_col.setdefault(t.col, []).append(t)
    for k in sorted(by_col):
        if cluster_columns:
            lines.append(f"  subgraph cluster_col{k} {{")
            lines.append(f'    label="column {k + 1}"; color=gray;')
        indent = "    " if cluster_columns else "  "
        for t in by_col[k]:
            lines.append(
                f'{indent}t{t.tid} [label="{t}", fillcolor="{_COLORS[t.kernel]}"];'
            )
        if cluster_columns:
            lines.append("  }")
    for t in graph.tasks:
        for d in t.deps:
            lines.append(f"  t{d} -> t{t.tid};")
    lines.append("}")
    return "\n".join(lines)
