"""Flat numpy index of a task graph — the simulator's substrate (S10).

A :class:`TaskGraph` stores tasks as Python objects with per-task
dependency lists, which is the right shape for construction and
inspection but the wrong one for the simulators: walking millions of
``Task.deps`` lists dominates the runtime of
:func:`~repro.sim.simulate.simulate_unbounded` on large grids.

:class:`GraphIndex` converts the graph once into CSR-style arrays —
predecessor and successor adjacency, per-task weights, and a
topological *level* decomposition (level of a task = length of the
longest edge path reaching it).  All tasks of one level have every
predecessor in strictly earlier levels, so a forward (or reverse) pass
over levels can be expressed with ``np.maximum.reduceat`` over
pre-gathered segments instead of a per-task Python loop.  The arrays
also back the plan cache's on-disk format
(:mod:`repro.planner`), so a cached plan skips both dataflow inference
and re-indexing.

The index is immutable by convention: it is built from a fully
constructed graph (``TaskGraph.index()`` memoizes it) and shared by
every simulation over that graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .tasks import TaskGraph

__all__ = ["GraphIndex", "build_index"]


def _csr_gather(ptr: np.ndarray, adj: np.ndarray,
                nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR segments of ``nodes``, preserving node order.

    Returns ``(values, counts)`` where ``values`` is the concatenation
    of ``adj[ptr[n]:ptr[n+1]]`` for each ``n`` and ``counts`` the
    per-node segment lengths.
    """
    counts = ptr[nodes + 1] - ptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=adj.dtype), counts
    out_off = np.zeros(len(nodes), dtype=np.int64)
    np.cumsum(counts[:-1], out=out_off[1:])
    idx = np.arange(total, dtype=np.int64) + np.repeat(
        ptr[nodes] - out_off, counts)
    return adj[idx], counts


@dataclass(frozen=True)
class GraphIndex:
    """CSR-style view of a :class:`~repro.dag.tasks.TaskGraph`.

    Attributes
    ----------
    n : int
        Task count.
    weights : ndarray of float64, shape (n,)
        Per-task durations.
    pred_ptr, pred_adj : ndarray of int64
        Predecessor CSR (``pred_adj[pred_ptr[t]:pred_ptr[t+1]]`` are
        ``t``'s dependencies, in emission order).
    succ_ptr, succ_adj : ndarray of int64
        Successor CSR, targets ascending within each segment.
    level : ndarray of int64, shape (n,)
        Longest-path depth of each task (sources are level 0).
    order : ndarray of int64, shape (n,)
        Task ids sorted by (level, id) — a topological order grouped
        into level segments.
    level_ptr : ndarray of int64, shape (L + 1,)
        Segment bounds of each level inside ``order``.
    fwd_pred_ptr, fwd_pred_adj : ndarray of int64
        ``pred_adj`` re-gathered to follow ``order`` (``fwd_pred_ptr``
        is aligned with positions in ``order``), so a level's
        predecessor segments are one contiguous slice.
    rev_nodes, rev_seg_ptr, rev_succ_ptr, rev_succ_adj : ndarray of int64
        Tasks *with at least one successor*, grouped by descending
        level (``rev_seg_ptr`` bounds the groups), with their successor
        segments gathered contiguously — the reverse-pass mirror of the
        forward arrays, used by ``bottom_levels``.
    """

    n: int
    weights: np.ndarray
    pred_ptr: np.ndarray
    pred_adj: np.ndarray
    succ_ptr: np.ndarray
    succ_adj: np.ndarray
    level: np.ndarray
    order: np.ndarray
    level_ptr: np.ndarray
    fwd_pred_ptr: np.ndarray
    fwd_pred_adj: np.ndarray
    rev_nodes: np.ndarray
    rev_seg_ptr: np.ndarray
    rev_succ_ptr: np.ndarray
    rev_succ_adj: np.ndarray

    @property
    def indegree(self) -> np.ndarray:
        """Fresh per-task dependency counts (safe to mutate)."""
        return (self.pred_ptr[1:] - self.pred_ptr[:-1]).copy()

    def with_weights(self, weights: np.ndarray) -> "GraphIndex":
        """Shallow copy sharing every structural array, new weights.

        The level decomposition depends only on the edge set, so a
        rescaled graph (measured kernel times, Table-1 variants) can
        reuse the whole index.
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.n,):
            raise ValueError(
                f"weights have shape {w.shape}, expected ({self.n},)")
        return replace(self, weights=w)


def build_index(graph: "TaskGraph") -> GraphIndex:
    """Build the :class:`GraphIndex` of ``graph``.

    One O(tasks + edges) pass; prefer the memoized
    :meth:`TaskGraph.index` over calling this directly.
    """
    tasks = graph.tasks
    n = len(tasks)
    weights = np.fromiter((t.weight for t in tasks), dtype=np.float64,
                          count=n)
    dep_counts = np.fromiter((len(t.deps) for t in tasks), dtype=np.int64,
                             count=n)
    ne = int(dep_counts.sum())
    pred_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(dep_counts, out=pred_ptr[1:])
    pred_adj = np.fromiter((d for t in tasks for d in t.deps),
                           dtype=np.int64, count=ne)

    # successors: edges are (target asc, dep) in pred_adj; a stable
    # sort by source groups them into CSR with ascending targets,
    # matching TaskGraph.successors() order.
    succ_counts = np.bincount(pred_adj, minlength=n).astype(np.int64)
    succ_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(succ_counts, out=succ_ptr[1:])
    edge_targets = np.repeat(np.arange(n, dtype=np.int64), dep_counts)
    succ_adj = edge_targets[np.argsort(pred_adj, kind="stable")]

    # longest-path levels via Kahn frontier peeling: a task is removed
    # in round r iff the longest edge path reaching it has r edges
    level = np.zeros(n, dtype=np.int64)
    indeg = dep_counts.copy()
    frontier = np.flatnonzero(indeg == 0)
    lvl = 0
    while frontier.size:
        level[frontier] = lvl
        targets, _ = _csr_gather(succ_ptr, succ_adj, frontier)
        if targets.size:
            dec = np.bincount(targets, minlength=n)
            indeg -= dec
            frontier = np.flatnonzero((indeg == 0) & (dec > 0))
        else:
            frontier = targets
        lvl += 1

    order = np.argsort(level, kind="stable").astype(np.int64)
    nlevels = int(level.max()) + 1 if n else 0
    level_ptr = np.searchsorted(
        level[order], np.arange(nlevels + 1, dtype=np.int64)).astype(np.int64)

    fwd_pred_adj, fwd_counts = _csr_gather(pred_ptr, pred_adj, order)
    fwd_pred_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(fwd_counts, out=fwd_pred_ptr[1:])

    # reverse pass: tasks with successors, grouped by descending level
    has_succ = np.flatnonzero(succ_counts > 0).astype(np.int64)
    rev_nodes = has_succ[np.argsort(-level[has_succ], kind="stable")]
    rev_succ_adj, rev_counts = _csr_gather(succ_ptr, succ_adj, rev_nodes)
    rev_succ_ptr = np.zeros(len(rev_nodes) + 1, dtype=np.int64)
    np.cumsum(rev_counts, out=rev_succ_ptr[1:])
    if len(rev_nodes):
        lvl_desc = level[rev_nodes]
        change = np.flatnonzero(np.diff(lvl_desc)) + 1
        rev_seg_ptr = np.concatenate(
            ([0], change, [len(rev_nodes)])).astype(np.int64)
    else:
        rev_seg_ptr = np.zeros(1, dtype=np.int64)

    return GraphIndex(
        n=n, weights=weights,
        pred_ptr=pred_ptr, pred_adj=pred_adj,
        succ_ptr=succ_ptr, succ_adj=succ_adj,
        level=level, order=order, level_ptr=level_ptr,
        fwd_pred_ptr=fwd_pred_ptr, fwd_pred_adj=fwd_pred_adj,
        rev_nodes=rev_nodes, rev_seg_ptr=rev_seg_ptr,
        rev_succ_ptr=rev_succ_ptr, rev_succ_adj=rev_succ_adj,
    )
