"""Task and task-graph containers for the tiled QR kernel DAG (S10).

A :class:`Task` is one kernel invocation — ``GEQRT(i,k)``,
``UNMQR(i,k,j)``, ``TSQRT/TTQRT(i,piv,k)`` or ``TSMQR/TTMQR(i,piv,k,j)``
— with its Table-1 weight and its predecessor list.  A
:class:`TaskGraph` is the full DAG of a factorization, in a
topologically valid emission order (program order of the elimination
list), ready for the discrete-event simulator or a runtime executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from ..kernels.costs import KERNEL_WEIGHTS, Kernel

if TYPE_CHECKING:  # pragma: no cover
    from .index import GraphIndex

__all__ = ["Task", "TaskGraph"]

#: stable kernel <-> integer coding for the array form of a graph
KERNEL_CODES: tuple[Kernel, ...] = tuple(Kernel)
_KERNEL_TO_CODE = {k: c for c, k in enumerate(KERNEL_CODES)}


@dataclass(slots=True)
class Task:
    """One kernel invocation in the factorization DAG.

    Attributes
    ----------
    tid : int
        Dense task index (position in :attr:`TaskGraph.tasks`).
    kernel : Kernel
        Which of the six kernels.
    row : int
        The row the kernel factors/updates (for the stacked kernels,
        the *eliminated* row ``i``).
    piv : int or None
        Pivot row for the stacked kernels, ``None`` for GEQRT/UNMQR.
    col : int
        Panel column ``k``.
    j : int or None
        Target column for update kernels (``j > col``), ``None`` for
        panel kernels.
    weight : float
        Duration in model time units (Table 1 by default).
    deps : list of int
        Predecessor task ids.
    """

    tid: int
    kernel: Kernel
    row: int
    piv: Optional[int]
    col: int
    j: Optional[int]
    weight: float
    deps: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        args = [str(self.row + 1)]
        if self.piv is not None:
            args.append(str(self.piv + 1))
        args.append(str(self.col + 1))
        if self.j is not None:
            args.append(str(self.j + 1))
        return f"{self.kernel}({','.join(args)})"


class TaskGraph:
    """The kernel DAG of one tiled QR factorization.

    Tasks are stored in a topologically valid order (dependencies point
    to earlier indices).  ``zero_task[(i, k)]`` maps each sub-diagonal
    tile to the id of the task that zeroes it (its TSQRT/TTQRT), which
    is what the paper's "time-step at which the tile is zeroed out"
    tables report.
    """

    def __init__(self, p: int, q: int, name: str = "", problem: str = "qr"):
        self.p = p
        self.q = q
        self.name = name
        #: problem family that produced this DAG ("qr", "cholesky", "lu");
        #: analytics and trace metadata label reports with it.
        self.problem = problem
        self.tasks: list[Task] = []
        self.zero_task: dict[tuple[int, int], int] = {}
        self._index: Optional["GraphIndex"] = None

    def add(
        self,
        kernel: Kernel,
        row: int,
        piv: Optional[int],
        col: int,
        j: Optional[int],
        deps: list[int],
        weight: Optional[float] = None,
    ) -> Task:
        """Append a task; ``weight`` defaults to the Table-1 cost."""
        w = float(KERNEL_WEIGHTS[kernel]) if weight is None else float(weight)
        # dedupe cheaply (dependency lists are tiny: typically 1-5 entries)
        uniq: list[int] = []
        for d in deps:
            if d is not None and d not in uniq:
                uniq.append(d)
        t = Task(tid=len(self.tasks), kernel=kernel, row=row, piv=piv,
                 col=col, j=j, weight=w, deps=uniq)
        self.tasks.append(t)
        self._index = None  # structure changed; any memoized index is stale
        if kernel in (Kernel.TSQRT, Kernel.TTQRT):
            self.zero_task[(row, col)] = t.tid
        return t

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def total_weight(self) -> float:
        """Sum of task weights (the Section-2.2 invariant ``6pq^2-2q^3``)."""
        return sum(t.weight for t in self.tasks)

    def successors(self) -> list[list[int]]:
        """Adjacency list of successors (computed on demand)."""
        succ: list[list[int]] = [[] for _ in self.tasks]
        for t in self.tasks:
            for d in t.deps:
                succ[d].append(t.tid)
        return succ

    def index(self) -> "GraphIndex":
        """The memoized :class:`~repro.dag.index.GraphIndex` of this graph.

        Built on first use and reused by every simulation; appending a
        task invalidates it.
        """
        if self._index is None:
            from .index import build_index  # local: tasks <-> index

            self._index = build_index(self)
        return self._index

    # ------------------------------------------------------------------
    # flat array form (the plan cache's on-disk representation)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Dump the graph as a dict of flat numpy arrays.

        The inverse of :meth:`from_arrays`; ``piv``/``j`` use ``-1``
        for ``None``.  Dependency lists are stored CSR-style
        (``dep_ptr``/``dep_adj``).
        """
        n = len(self.tasks)
        kernel = np.fromiter((_KERNEL_TO_CODE[t.kernel] for t in self.tasks),
                             dtype=np.int8, count=n)
        row = np.fromiter((t.row for t in self.tasks), dtype=np.int32, count=n)
        piv = np.fromiter((-1 if t.piv is None else t.piv
                           for t in self.tasks), dtype=np.int32, count=n)
        col = np.fromiter((t.col for t in self.tasks), dtype=np.int32, count=n)
        j = np.fromiter((-1 if t.j is None else t.j
                         for t in self.tasks), dtype=np.int32, count=n)
        weight = np.fromiter((t.weight for t in self.tasks),
                             dtype=np.float64, count=n)
        counts = np.fromiter((len(t.deps) for t in self.tasks),
                             dtype=np.int64, count=n)
        dep_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=dep_ptr[1:])
        dep_adj = np.fromiter((d for t in self.tasks for d in t.deps),
                              dtype=np.int64, count=int(dep_ptr[-1]))
        return {"kernel": kernel, "row": row, "piv": piv, "col": col,
                "j": j, "weight": weight, "dep_ptr": dep_ptr,
                "dep_adj": dep_adj}

    @classmethod
    def from_arrays(cls, p: int, q: int, name: str,
                    arrays: dict[str, np.ndarray]) -> "TaskGraph":
        """Rebuild a graph dumped by :meth:`to_arrays`.

        Reconstructs tasks directly — no dataflow inference — which is
        what makes loading a cached plan much cheaper than
        :func:`~repro.dag.build.build_dag`.
        """
        g = cls(p, q, name)
        kernel = arrays["kernel"]
        row = arrays["row"].tolist()
        piv = arrays["piv"].tolist()
        col = arrays["col"].tolist()
        j = arrays["j"].tolist()
        weight = arrays["weight"].tolist()
        dep_ptr = arrays["dep_ptr"].tolist()
        dep_adj = arrays["dep_adj"].tolist()
        zero = (Kernel.TSQRT, Kernel.TTQRT)
        tasks = g.tasks
        for tid, code in enumerate(kernel.tolist()):
            k = KERNEL_CODES[code]
            t = Task(tid=tid, kernel=k, row=row[tid],
                     piv=None if piv[tid] < 0 else piv[tid],
                     col=col[tid], j=None if j[tid] < 0 else j[tid],
                     weight=weight[tid],
                     deps=dep_adj[dep_ptr[tid]:dep_ptr[tid + 1]])
            tasks.append(t)
            if k in zero:
                g.zero_task[(t.row, t.col)] = tid
        return g

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (requires networkx)."""
        import networkx as nx

        g = nx.DiGraph(p=self.p, q=self.q, name=self.name)
        for t in self.tasks:
            g.add_node(t.tid, label=str(t), kernel=t.kernel.value, weight=t.weight)
        for t in self.tasks:
            for d in t.deps:
                g.add_edge(d, t.tid)
        return g

    def rescale(self, weights: dict[Kernel, float]) -> "TaskGraph":
        """Return a copy with per-kernel weights replaced.

        Used to feed *measured* kernel times (seconds) into the
        simulator for the experimental-performance reproduction.
        """
        out = TaskGraph(self.p, self.q, self.name, problem=self.problem)
        for t in self.tasks:
            out.add(t.kernel, t.row, t.piv, t.col, t.j, list(t.deps),
                    weight=weights[t.kernel])
        return out
