"""Task and task-graph containers for the tiled QR kernel DAG (S10).

A :class:`Task` is one kernel invocation — ``GEQRT(i,k)``,
``UNMQR(i,k,j)``, ``TSQRT/TTQRT(i,piv,k)`` or ``TSMQR/TTMQR(i,piv,k,j)``
— with its Table-1 weight and its predecessor list.  A
:class:`TaskGraph` is the full DAG of a factorization, in a
topologically valid emission order (program order of the elimination
list), ready for the discrete-event simulator or a runtime executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..kernels.costs import KERNEL_WEIGHTS, Kernel

__all__ = ["Task", "TaskGraph"]


@dataclass(slots=True)
class Task:
    """One kernel invocation in the factorization DAG.

    Attributes
    ----------
    tid : int
        Dense task index (position in :attr:`TaskGraph.tasks`).
    kernel : Kernel
        Which of the six kernels.
    row : int
        The row the kernel factors/updates (for the stacked kernels,
        the *eliminated* row ``i``).
    piv : int or None
        Pivot row for the stacked kernels, ``None`` for GEQRT/UNMQR.
    col : int
        Panel column ``k``.
    j : int or None
        Target column for update kernels (``j > col``), ``None`` for
        panel kernels.
    weight : float
        Duration in model time units (Table 1 by default).
    deps : list of int
        Predecessor task ids.
    """

    tid: int
    kernel: Kernel
    row: int
    piv: Optional[int]
    col: int
    j: Optional[int]
    weight: float
    deps: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        args = [str(self.row + 1)]
        if self.piv is not None:
            args.append(str(self.piv + 1))
        args.append(str(self.col + 1))
        if self.j is not None:
            args.append(str(self.j + 1))
        return f"{self.kernel}({','.join(args)})"


class TaskGraph:
    """The kernel DAG of one tiled QR factorization.

    Tasks are stored in a topologically valid order (dependencies point
    to earlier indices).  ``zero_task[(i, k)]`` maps each sub-diagonal
    tile to the id of the task that zeroes it (its TSQRT/TTQRT), which
    is what the paper's "time-step at which the tile is zeroed out"
    tables report.
    """

    def __init__(self, p: int, q: int, name: str = ""):
        self.p = p
        self.q = q
        self.name = name
        self.tasks: list[Task] = []
        self.zero_task: dict[tuple[int, int], int] = {}

    def add(
        self,
        kernel: Kernel,
        row: int,
        piv: Optional[int],
        col: int,
        j: Optional[int],
        deps: list[int],
        weight: Optional[float] = None,
    ) -> Task:
        """Append a task; ``weight`` defaults to the Table-1 cost."""
        w = float(KERNEL_WEIGHTS[kernel]) if weight is None else float(weight)
        # dedupe cheaply (dependency lists are tiny: typically 1-5 entries)
        uniq: list[int] = []
        for d in deps:
            if d is not None and d not in uniq:
                uniq.append(d)
        t = Task(tid=len(self.tasks), kernel=kernel, row=row, piv=piv,
                 col=col, j=j, weight=w, deps=uniq)
        self.tasks.append(t)
        if kernel in (Kernel.TSQRT, Kernel.TTQRT):
            self.zero_task[(row, col)] = t.tid
        return t

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def total_weight(self) -> float:
        """Sum of task weights (the Section-2.2 invariant ``6pq^2-2q^3``)."""
        return sum(t.weight for t in self.tasks)

    def successors(self) -> list[list[int]]:
        """Adjacency list of successors (computed on demand)."""
        succ: list[list[int]] = [[] for _ in self.tasks]
        for t in self.tasks:
            for d in t.deps:
                succ[d].append(t.tid)
        return succ

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (requires networkx)."""
        import networkx as nx

        g = nx.DiGraph(p=self.p, q=self.q, name=self.name)
        for t in self.tasks:
            g.add_node(t.tid, label=str(t), kernel=t.kernel.value, weight=t.weight)
        for t in self.tasks:
            for d in t.deps:
                g.add_edge(d, t.tid)
        return g

    def rescale(self, weights: dict[Kernel, float]) -> "TaskGraph":
        """Return a copy with per-kernel weights replaced.

        Used to feed *measured* kernel times (seconds) into the
        simulator for the experimental-performance reproduction.
        """
        out = TaskGraph(self.p, self.q, self.name)
        for t in self.tasks:
            out.add(t.kernel, t.row, t.piv, t.col, t.j, list(t.deps),
                    weight=weights[t.kernel])
        return out
