"""Stability of tiled QR across elimination trees and conditioning.

Section 1 of the paper picks Householder QR for its *unconditional*
stability (unlike Gaussian elimination).  This example verifies the
claim end to end: graded matrices with condition numbers up to 1e14 are
factored with every elimination tree, and the backward error stays at
a small multiple of machine epsilon throughout.

Run: ``python examples/accuracy_study.py``
"""

import numpy as np

from repro.analysis.accuracy import compare_schemes
from repro.bench import format_table
from repro.matrices import graded, kahan, random_dense


def main() -> None:
    cases = [
        ("random (cond ~1e1)", random_dense(128, 48, seed=0)),
        ("graded, cond 1e8", graded(128, 48, condition=1e8, seed=0)),
        ("graded, cond 1e14", graded(128, 48, condition=1e14, seed=0)),
        ("Kahan 48x48", np.vstack([kahan(48), np.zeros((80, 48))])),
    ]
    rows = []
    for label, a in cases:
        reports = compare_schemes(a, nb=16)
        for scheme, rep in reports.items():
            rows.append([label, scheme, f"{rep.backward_error:.2e}",
                         f"{rep.orthogonality:.2e}",
                         "yes" if rep.is_stable() else "NO"])
    print(format_table(
        ["matrix", "scheme", "||A-QR||/||A||", "||Q^H Q - I||", "stable?"],
        rows,
        title="Householder tiled QR is backward stable for every "
              "elimination tree and any conditioning"))
    print("\nCompare: LU with partial pivoting on the Kahan matrix loses "
          "digits;\ntiled QR's orthogonal transformations cannot amplify "
          "errors, whichever\ntree the scheduler picks — that is why the "
          "elimination list is a pure\nperformance decision.")


if __name__ == "__main__":
    main()
