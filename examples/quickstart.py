"""Quickstart: factor a matrix with tiled QR and verify the result.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import available_schemes, critical_path, tiled_qr


def main() -> None:
    rng = np.random.default_rng(0)

    # --- factor a 600 x 300 matrix with the paper's Greedy tree --------
    a = rng.standard_normal((600, 300))
    f = tiled_qr(a, nb=50, ib=25, scheme="greedy")

    print("A is", a.shape, "-> tile grid", f.context.tiled.grid)
    print(f"residual  ||A - QR|| / ||A||   = {f.residual(a):.2e}")
    print(f"orthogonality ||Q^H Q - I||    = {f.orthogonality():.2e}")

    # --- the factors ----------------------------------------------------
    r = f.r()                      # 300 x 300 upper triangular
    q = f.q()                      # 600 x 300 with orthonormal columns
    print("R upper triangular:", bool(np.allclose(r, np.triu(r))))
    print("Q^T Q = I:", bool(np.allclose(q.T @ q, np.eye(300), atol=1e-10)))

    # --- solve a least-squares problem without forming Q ----------------
    b = rng.standard_normal(600)
    x = f.solve_lstsq(b)
    x_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
    print(f"least-squares match vs numpy   = {np.linalg.norm(x - x_ref):.2e}")

    # --- why Greedy?  critical paths of the available trees -------------
    p, qt = f.context.tiled.grid
    print(f"\ncritical paths for the {p} x {qt} tile grid (TT kernels):")
    for scheme in ("greedy", "fibonacci", "binary-tree", "flat-tree"):
        print(f"  {scheme:12s} {critical_path(scheme, p, qt):6.0f} time units")
    print("\nall schemes:", ", ".join(available_schemes()))


if __name__ == "__main__":
    main()
