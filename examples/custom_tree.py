"""Design your own elimination tree and push it through the whole stack.

Any ordered list of ``elim(row, piv, col)`` satisfying the two
Section-2.2 validity conditions is a legitimate tiled QR algorithm.
This example hand-rolls a hybrid tree (pairwise "tournament" rounds at
the bottom, flat tree at the top), validates it, analyzes its critical
path against the named schemes, checks Lemma-1 canonicalization, and
finally factors a real matrix with it.

Run: ``python examples/custom_tree.py``
"""

import numpy as np

from repro import critical_path
from repro.dag import build_dag
from repro.runtime import execute_graph
from repro.schemes import Elimination, EliminationList
from repro.sim import simulate_unbounded
from repro.tiles import TiledMatrix


def tournament_flat_tree(p: int, q: int, rounds: int) -> EliminationList:
    """Binary-tree the bottom for ``rounds`` levels, then flat-tree."""
    elims = []
    for k in range(min(p, q)):
        alive = list(range(k, p))
        for _ in range(rounds):
            if len(alive) < 3:
                break
            survivors, row_pairs = [alive[0]], alive[1:]
            # pair consecutive non-diagonal rows
            for a, b in zip(row_pairs[::2], row_pairs[1::2]):
                elims.append(Elimination(b, a, k))
                survivors.append(a)
            if len(row_pairs) % 2:
                survivors.append(row_pairs[-1])
            alive = survivors
        for i in alive[1:]:
            elims.append(Elimination(i, k, k))
    return EliminationList(p, q, elims, name=f"tournament({rounds})+flat")


def main() -> None:
    p, q = 16, 4

    print(f"critical paths on a {p} x {q} grid (TT kernels):")
    for rounds in (0, 1, 2, 3):
        el = tournament_flat_tree(p, q, rounds)
        el.validate()
        cp = simulate_unbounded(build_dag(el, "TT")).makespan
        print(f"  {el.name:18s} {cp:6.0f}")
    for scheme in ("flat-tree", "binary-tree", "greedy"):
        print(f"  {scheme:18s} {critical_path(scheme, p, q):6.0f}")

    # Lemma 1: a deliberately weird list with reverse eliminations
    weird = EliminationList(4, 1, [
        Elimination(1, 3, 0),   # reverse: pivot below the target
        Elimination(2, 3, 0),
        Elimination(3, 0, 0),
    ], name="reverse-happy")
    weird.validate()
    canon = weird.canonicalize()
    cp_w = simulate_unbounded(build_dag(weird, "TT")).makespan
    cp_c = simulate_unbounded(build_dag(canon, "TT")).makespan
    print(f"\nLemma 1: {[str(e) for e in weird]} (cp {cp_w:g})")
    print(f"     ->  {[str(e) for e in canon]} (cp {cp_c:g}, unchanged)")

    # and the custom tree actually factors a matrix
    rng = np.random.default_rng(0)
    nb = 8
    a = rng.standard_normal((p * nb, q * nb))
    tiled = TiledMatrix(a.copy(), nb)
    el = tournament_flat_tree(p, q, 2)
    ctx = execute_graph(build_dag(el, "TT"), tiled, ib=4)
    c = a.copy()
    ctx.apply_q(c, adjoint=True)
    resid = np.linalg.norm(np.tril(c[: q * nb], -1))
    print(f"\ncustom tree factorization: ||below-diagonal of Q^H A|| = "
          f"{resid:.2e}")


if __name__ == "__main__":
    main()
