"""Predict parallel performance on *your* machine (Section 4's model).

Measures the six kernels' sequential rates at a chosen tile size, feeds
them into the paper's Roofline-style predictor
``gamma_pred = gamma_seq * T / max(T / P, cp)`` and prints predicted
GFLOP/s for a sweep of matrix shapes and core counts — the analysis a
user would run before picking an elimination tree for their machine.

Run: ``python examples/performance_model.py [nb] [cores]``
"""

import sys


from repro.analysis import PerformanceModel, predicted_gflops
from repro.bench import format_series, time_kernels
from repro.bench.kernel_timing import measure_gamma_seq
from repro.kernels.costs import Kernel


def main() -> None:
    nb = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 48

    print(f"measuring kernels at nb={nb} (LAPACK backend, warm cache)...")
    rates = time_kernels(nb, ib=32, backend="lapack", strategy="warm")
    for k in Kernel:
        print(f"  {k.value}: {rates.gflops[k]:6.2f} GFLOP/s "
              f"({rates.seconds[k] * 1e6:8.1f} us)")
    gamma = measure_gamma_seq(rates)
    print(f"aggregate sequential rate gamma_seq = {gamma:.3f} GFLOP/s")
    print(f"TS-vs-TT kernel time ratios: factor "
          f"{rates.ts_vs_tt_factor_ratio():.2f}, update "
          f"{rates.ts_vs_tt_update_ratio():.2f} (paper: ~1.3)")

    model = PerformanceModel(gamma_seq=gamma, processors=cores)
    p = 40
    qs = [1, 2, 4, 5, 8, 10, 20, 30, 40]
    series = {}
    for scheme in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
        series[scheme] = [predicted_gflops(scheme, p, q, model) for q in qs]
    print()
    print(format_series(
        "q", qs, series,
        title=f"predicted GFLOP/s on {cores} cores, p=40 tile rows "
              f"(the paper's Figure 1 for your machine)"))
    peak = cores * gamma
    print(f"\nmachine roofline: {peak:.1f} GFLOP/s; Greedy reaches "
          f"{100 * series['greedy'][-1] / peak:.0f}% of it at q=40.")


if __name__ == "__main__":
    main()
