"""Block orthogonalization of tall-skinny matrices.

Block iterative methods (the introduction's second workload) need an
orthonormal basis of a tall block at every step.  This example
orthogonalizes a 3200 x 64 block, in real and complex arithmetic,
and shows how the elimination tree changes the available parallelism
(critical path) at identical flop cost.

Run: ``python examples/tall_skinny_orthogonalization.py``
"""

import numpy as np

from repro import critical_path, tiled_qr, total_weight


def orthonormal_basis(a: np.ndarray, nb: int = 32):
    """Return (Q, R) with orthonormal Q spanning the columns of ``a``."""
    f = tiled_qr(a, nb=nb, scheme="greedy", backend="lapack")
    return f.q(), f.r()


def main() -> None:
    rng = np.random.default_rng(3)
    m, n, nb = 3200, 64, 32

    for label, a in (
        ("real   ", rng.standard_normal((m, n))),
        ("complex", rng.standard_normal((m, n))
         + 1j * rng.standard_normal((m, n))),
    ):
        q, r = orthonormal_basis(a, nb)
        orth = np.linalg.norm(q.conj().T @ q - np.eye(n))
        span = np.linalg.norm(a - q @ r) / np.linalg.norm(a)
        print(f"{label}: Q {q.shape}, ||Q^H Q - I|| = {orth:.2e}, "
              f"||A - QR||/||A|| = {span:.2e}")

    p, qt = m // nb, n // nb
    total = total_weight(p, qt)
    print(f"\ntile grid {p} x {qt}; every tree costs {total} work units, "
          "but their critical paths differ wildly:")
    for scheme in ("greedy", "fibonacci", "binary-tree", "flat-tree"):
        cp = critical_path(scheme, p, qt)
        print(f"  {scheme:12s} cp = {cp:6.0f} units -> max speedup "
              f"{total / cp:6.1f}x")
    print("\nGreedy needs no tuning parameter and achieves the shortest "
          "path\n(asymptotically optimal: cp <= 22q + 6 log2 p).")


if __name__ == "__main__":
    main()
