"""Least squares with tall matrices — the paper's motivating workload.

Fits a polynomial model to noisy observations via the tiled QR
factorization, comparing elimination trees on a tall-and-skinny grid
(p >> q), where the paper proves Greedy/Fibonacci shine.

Run: ``python examples/least_squares.py``
"""

import time

import numpy as np

from repro import critical_path, tiled_qr


def vandermonde(t: np.ndarray, degree: int) -> np.ndarray:
    return np.vander(t, degree + 1, increasing=True)


def main() -> None:
    rng = np.random.default_rng(7)

    # 4000 observations, degree-15 polynomial: a 4000 x 16 system
    m, degree = 4000, 15
    t = np.linspace(-1, 1, m)
    coef_true = rng.standard_normal(degree + 1)
    y = vandermonde(t, degree) @ coef_true + 1e-6 * rng.standard_normal(m)

    a = vandermonde(t, degree)
    nb = 16  # p = 250 tile rows, q = 1 tile column: extremely tall

    print(f"system: {m} x {degree + 1}, tile grid "
          f"{-(-m // nb)} x {-(-(degree + 1) // nb)} (nb={nb})")

    coef_ref, *_ = np.linalg.lstsq(a, y, rcond=None)
    for scheme in ("greedy", "binary-tree", "flat-tree"):
        t0 = time.perf_counter()
        f = tiled_qr(a, nb=nb, scheme=scheme, backend="lapack")
        coef = f.solve_lstsq(y)
        dt = time.perf_counter() - t0
        err = np.linalg.norm(coef - coef_ref) / np.linalg.norm(coef_ref)
        p, q = f.context.tiled.grid
        cp = critical_path(scheme, p, q)
        print(f"  {scheme:12s} vs numpy.lstsq {err:.2e}   "
              f"wall {dt * 1e3:7.1f} ms   critical path {cp:6.0f} units")

    print("\nFor q = 1 (a single tile column) BinaryTree = Greedy is the")
    print("optimal reduction; FlatTree's chain is ~p/log2(p) times longer.")


if __name__ == "__main__":
    main()
