"""Explore elimination trees: step tables, critical paths, Gantt charts.

A terminal tour of the paper's algorithm zoo on a grid of your choice:
prints each tree's zero-out time table (the paper's Tables 2-3 style),
the critical-path comparison, the PlasmaTree BS sweep, and an ASCII
Gantt chart of a bounded-processor schedule.

Run: ``python examples/scheme_explorer.py [p] [q] [workers]``
"""

import sys

from repro import critical_path, zero_out_steps
from repro.bench import best_plasma_bs, format_table
from repro.bench.autotune import plasma_bs_sweep
from repro.bench.report import format_step_matrix
from repro.dag import build_dag
from repro.schemes import asap, get_scheme
from repro.sim import render_gantt, simulate_bounded


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    q = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    print(f"=== elimination trees on a {p} x {q} tile grid (TT kernels) ===")
    for scheme in ("flat-tree", "binary-tree", "fibonacci", "greedy"):
        tb = zero_out_steps(scheme, p, q).astype(int)
        print()
        print(format_step_matrix(
            tb, title=f"{scheme}: tile zero-out times "
                      f"(critical path {int(tb.max())})"))

    print("\n=== Asap (dynamic, tile-level greedy) ===")
    res = asap(p, q)
    print(format_step_matrix(res.zero_table.astype(int),
                             title=f"asap: makespan {res.makespan:g}"))

    print("\n=== PlasmaTree domain-size sweep ===")
    sweep = plasma_bs_sweep(p, q)
    bs, cp = best_plasma_bs(p, q)
    rows = [[b, int(c)] for b, c in sorted(sweep.items())]
    print(format_table(["BS", "critical path"], rows,
                       title=f"best BS = {bs} (cp {cp:g}); Greedy needs no "
                             f"parameter and achieves "
                             f"{critical_path('greedy', p, q):g}"))

    print(f"\n=== Greedy on {workers} processors (list scheduling) ===")
    g = build_dag(get_scheme("greedy", p, q), "TT")
    sched = simulate_bounded(g, workers)
    print(render_gantt(sched, width=96))
    print("\nlegend: G=GEQRT U=UNMQR T=TTQRT t=TTMQR .=idle")


if __name__ == "__main__":
    main()
