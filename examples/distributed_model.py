"""Modeling a distributed-memory tiled QR (the paper's §5 outlook).

Distributes tile rows over several node memories, counts the
communication each elimination tree generates, and recomputes critical
paths with per-tile transfer costs — the analysis one would run before
writing the MPI port the paper anticipates.

Run: ``python examples/distributed_model.py [p] [q] [nodes]``
"""

import sys

from repro.bench import format_table
from repro.dag import build_dag
from repro.ext import DistributedLayout, communication_volume, distributed_graph
from repro.schemes import get_scheme
from repro.sim import simulate_unbounded


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    q = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    nodes = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    schemes = [("greedy", {}), ("binary-tree", {}), ("flat-tree", {}),
               ("plasma-tree", {"bs": max(1, p // nodes)})]
    costs = (0.0, 4.0, 16.0)

    for kind in ("block", "cyclic"):
        lay = DistributedLayout(p=p, nodes=nodes, kind=kind)
        rows = []
        for scheme, kw in schemes:
            el = get_scheme(scheme, p, q, **kw)
            vol = communication_volume(el, lay)
            g = build_dag(el, "TT")
            cps = [simulate_unbounded(distributed_graph(g, lay, c)).makespan
                   for c in costs]
            label = scheme + (f"(BS={kw['bs']})" if kw else "")
            rows.append([label, vol["cross_eliminations"], vol["tiles"]]
                        + [int(c) for c in cps])
        print(format_table(
            ["scheme", "cross elims", "tiles moved"]
            + [f"cp @cost {c:g}" for c in costs],
            rows,
            title=f"\n{kind} layout, {nodes} nodes, {p} x {q} tiles"))

    print("\nReading: FlatTree's single pivot row talks to every node "
          "serially;\nBinaryTree localizes its low levels under a block "
          "layout; PlasmaTree\nwith BS = rows-per-node confines all but "
          "log2(nodes) merges inside\nnodes — the hierarchical design of "
          "Demmel et al. [8] / Hadri et al. [11].")


if __name__ == "__main__":
    main()
